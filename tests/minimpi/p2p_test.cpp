#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "simtime/clock.hpp"
#include "mpi_test_util.hpp"
#include "util/error.hpp"

namespace dac::minimpi {
namespace {

using testing::MpiTest;
using namespace std::chrono_literals;

util::Bytes bytes_of(int v) {
  util::ByteWriter w;
  w.put<std::int32_t>(v);
  return std::move(w).take();
}

int int_of(const util::Bytes& b) {
  util::ByteReader r(b);
  return r.get<std::int32_t>();
}

TEST_F(MpiTest, WorldRanksAndSizes) {
  std::atomic<int> rank_sum{0};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    EXPECT_EQ(p.size(), 4);
    rank_sum += p.rank();
  });
  EXPECT_EQ(rank_sum, 0 + 1 + 2 + 3);
}

TEST_F(MpiTest, ArgsReachEveryRank) {
  std::atomic<int> ok{0};
  util::ByteWriter w;
  w.put_string("payload");
  run_world(3, [&](Proc&, const util::Bytes& args) {
    util::ByteReader r(args);
    if (r.get_string() == "payload") ++ok;
  }, w.bytes());
  EXPECT_EQ(ok, 3);
}

TEST_F(MpiTest, SendRecvBetweenRanks) {
  std::atomic<int> received{0};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      p.send(p.world(), 1, 42, bytes_of(123));
    } else {
      auto r = p.recv(p.world(), 0, 42);
      EXPECT_EQ(r.source, 0);
      EXPECT_EQ(r.tag, 42);
      received = int_of(r.data);
    }
  });
  EXPECT_EQ(received, 123);
}

TEST_F(MpiTest, AnySourceAnyTag) {
  std::atomic<int> total{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        auto r = p.recv(p.world(), kAnySource, kAnyTag);
        sum += int_of(r.data);
      }
      total = sum;
    } else {
      p.send(p.world(), 0, p.rank() * 10, bytes_of(p.rank()));
    }
  });
  EXPECT_EQ(total, 3);
}

TEST_F(MpiTest, TagSelectivity) {
  // Rank 0 sends tag 1 then tag 2; receiver asks for tag 2 first and must
  // still get the right payloads.
  std::atomic<bool> ok{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      p.send(p.world(), 1, 1, bytes_of(100));
      p.send(p.world(), 1, 2, bytes_of(200));
    } else {
      auto r2 = p.recv(p.world(), 0, 2);
      auto r1 = p.recv(p.world(), 0, 1);
      ok = int_of(r2.data) == 200 && int_of(r1.data) == 100;
    }
  });
  EXPECT_TRUE(ok);
}

TEST_F(MpiTest, MessagesBetweenPairArriveInOrder) {
  constexpr int kN = 20;
  std::atomic<bool> in_order{true};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      for (int i = 0; i < kN; ++i) p.send(p.world(), 1, 7, bytes_of(i));
    } else {
      for (int i = 0; i < kN; ++i) {
        auto r = p.recv(p.world(), 0, 7);
        if (int_of(r.data) != i) in_order = false;
      }
    }
  });
  EXPECT_TRUE(in_order);
}

TEST_F(MpiTest, RecvForTimesOut) {
  std::atomic<bool> timed_out{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 1) {
      auto r = p.recv_for(p.world(), 0, 9, 30ms);
      timed_out = !r.has_value();
    }
    // rank 0 sends nothing
  });
  EXPECT_TRUE(timed_out);
}

TEST_F(MpiTest, RecvForGetsMessage) {
  std::atomic<int> got{0};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      p.send(p.world(), 1, 9, bytes_of(5));
    } else {
      auto r = p.recv_for(p.world(), 0, 9, 2000ms);
      ASSERT_TRUE(r.has_value());
      got = int_of(r->data);
    }
  });
  EXPECT_EQ(got, 5);
}

TEST_F(MpiTest, IprobeSeesPending) {
  std::atomic<bool> probed{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      p.send(p.world(), 1, 3, bytes_of(1));
      p.send(p.world(), 1, 4, bytes_of(2));  // handshake to order things
    } else {
      // Wait until the tag-4 message is in, then probe for tag 3.
      (void)p.recv(p.world(), 0, 4);
      probed = p.iprobe(p.world(), 0, 3);
      (void)p.recv(p.world(), 0, 3);
    }
  });
  EXPECT_TRUE(probed);
}

TEST_F(MpiTest, IprobeFalseWhenNothing) {
  std::atomic<bool> probed{true};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 1) probed = p.iprobe(p.world(), 0, 99);
  });
  EXPECT_FALSE(probed);
}

TEST_F(MpiTest, SelfCommDistinctPerProcess) {
  // Each process sends itself a message on its self comm; no cross-talk.
  std::atomic<int> ok{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    p.send(p.self(), 0, 1, bytes_of(p.rank()));
    auto r = p.recv(p.self(), 0, 1);
    if (int_of(r.data) == p.rank()) ++ok;
  });
  EXPECT_EQ(ok, 3);
}

TEST_F(MpiTest, LargePayloadIntegrity) {
  std::atomic<bool> ok{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      util::Bytes big(1 << 20);
      for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<std::byte>(i * 31 % 251);
      }
      p.send(p.world(), 1, 1, std::move(big));
    } else {
      auto r = p.recv(p.world(), 0, 1);
      bool good = r.data.size() == (1u << 20);
      for (std::size_t i = 0; good && i < r.data.size(); i += 4097) {
        good = r.data[i] == static_cast<std::byte>(i * 31 % 251);
      }
      ok = good;
    }
  });
  EXPECT_TRUE(ok);
}

TEST_F(MpiTest, UnknownExecutableThrows) {
  EXPECT_THROW(runtime_.launch_world("nope", {0}, {}),
               std::invalid_argument);
}

TEST_F(MpiTest, EmptyPlacementThrows) {
  runtime_.register_executable("e", [](Proc&, const util::Bytes&) {});
  EXPECT_THROW(runtime_.launch_world("e", {}, {}), std::invalid_argument);
}

TEST_F(MpiTest, UnknownNodeThrows) {
  runtime_.register_executable("e", [](Proc&, const util::Bytes&) {});
  EXPECT_THROW(runtime_.launch_world("e", {99}, {}), std::invalid_argument);
}

TEST_F(MpiTest, StopKillsBlockedWorld) {
  runtime_.register_executable("blocker", [](Proc& p, const util::Bytes&) {
    (void)p.recv(p.world(), kAnySource, kAnyTag);  // never satisfied
  });
  auto handle = runtime_.launch_world("blocker", {0, 1}, {});
  dac::simtime::sleep_for(20ms);  // NOLINT-DACSCHED(sleep-poll)
  handle.stop();
  handle.join();  // must not hang
  for (const auto& proc : handle.processes) EXPECT_TRUE(proc->finished());
}

}  // namespace
}  // namespace dac::minimpi
