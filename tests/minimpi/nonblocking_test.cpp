// Nonblocking operations: irecv request lifecycle, out-of-order completion,
// and the compute-while-waiting pattern they enable.
#include <gtest/gtest.h>

#include <atomic>

#include "simtime/clock.hpp"
#include "mpi_test_util.hpp"

namespace dac::minimpi {
namespace {

using testing::MpiTest;
using namespace std::chrono_literals;

util::Bytes bytes_of(int v) {
  util::ByteWriter w;
  w.put<std::int32_t>(v);
  return std::move(w).take();
}

int int_of(const util::Bytes& b) {
  util::ByteReader r(b);
  return r.get<std::int32_t>();
}

TEST_F(MpiTest, IrecvWaitDeliversMessage) {
  std::atomic<int> got{0};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      p.isend(p.world(), 1, 5, bytes_of(321));
    } else {
      auto req = p.irecv(p.world(), 0, 5);
      auto r = req.wait();
      got = int_of(r.data);
      EXPECT_TRUE(req.done());
    }
  });
  EXPECT_EQ(got, 321);
}

TEST_F(MpiTest, TestIsFalseBeforeArrival) {
  std::atomic<bool> early{true};
  std::atomic<bool> late{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 1) {
      auto req = p.irecv(p.world(), 0, 7);
      early = req.test();  // nothing sent yet
      // Handshake: tell rank 0 to send now.
      p.send(p.world(), 0, 1, {});
      // Poll until it lands.
      while (!req.test()) dac::simtime::sleep_for(1ms);  // NOLINT-DACSCHED(sleep-poll)
      late = true;
      EXPECT_EQ(int_of(req.take().data), 9);
    } else {
      (void)p.recv(p.world(), 1, 1);
      p.isend(p.world(), 1, 7, bytes_of(9));
    }
  });
  EXPECT_FALSE(early);
  EXPECT_TRUE(late);
}

TEST_F(MpiTest, RequestsCompleteOutOfOrder) {
  std::atomic<bool> ok{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      p.isend(p.world(), 1, 2, bytes_of(22));  // tag 2 first
      p.isend(p.world(), 1, 1, bytes_of(11));
    } else {
      auto r1 = p.irecv(p.world(), 0, 1);
      auto r2 = p.irecv(p.world(), 0, 2);
      // Wait on tag 1 first even though tag 2 was sent first.
      const int v1 = int_of(r1.wait().data);
      const int v2 = int_of(r2.wait().data);
      ok = v1 == 11 && v2 == 22;
    }
  });
  EXPECT_TRUE(ok);
}

TEST_F(MpiTest, ComputeWhileWaiting) {
  // The latency-hiding pattern: post the receive, do local work, then wait.
  std::atomic<bool> ok{false};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      dac::simtime::sleep_for(10ms);  // the remote data takes a while  // NOLINT-DACSCHED(sleep-poll)
      p.isend(p.world(), 1, 3, bytes_of(5));
    } else {
      auto req = p.irecv(p.world(), 0, 3);
      long local = 0;
      for (int i = 0; i < 100000; ++i) local += i % 7;  // overlap work
      const int remote = int_of(req.wait().data);
      ok = remote == 5 && local > 0;
    }
  });
  EXPECT_TRUE(ok);
}

TEST_F(MpiTest, TestIdempotentAfterCompletion) {
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      p.isend(p.world(), 1, 4, bytes_of(1));
    } else {
      auto req = p.irecv(p.world(), 0, 4);
      (void)req.wait();
      EXPECT_TRUE(req.test());
      EXPECT_TRUE(req.test());
      EXPECT_TRUE(req.done());
    }
  });
}

}  // namespace
}  // namespace dac::minimpi
