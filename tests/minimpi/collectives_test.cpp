#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "mpi_test_util.hpp"

namespace dac::minimpi {
namespace {

using testing::MpiTest;

TEST_F(MpiTest, BarrierSynchronizes) {
  // Every rank increments before the barrier; after the barrier all ranks
  // must observe the full count.
  std::atomic<int> before{0};
  std::atomic<int> violations{0};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    ++before;
    p.barrier(p.world());
    if (before.load() != 4) ++violations;
  });
  EXPECT_EQ(violations, 0);
}

TEST_F(MpiTest, BarrierSizeOneIsNoop) {
  run_world(1, [&](Proc& p, const util::Bytes&) { p.barrier(p.world()); });
}

TEST_F(MpiTest, RepeatedBarriersDoNotCrosstalk) {
  std::atomic<int> done{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    for (int i = 0; i < 10; ++i) p.barrier(p.world());
    ++done;
  });
  EXPECT_EQ(done, 3);
}

TEST_F(MpiTest, BcastFromRoot) {
  std::atomic<int> ok{0};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    util::Bytes data;
    if (p.rank() == 2) {
      util::ByteWriter w;
      w.put_string("broadcast");
      data = std::move(w).take();
    }
    p.bcast(p.world(), 2, data);
    util::ByteReader r(data);
    if (r.get_string() == "broadcast") ++ok;
  });
  EXPECT_EQ(ok, 4);
}

TEST_F(MpiTest, SequentialBcastsKeepOrder) {
  std::atomic<int> ok{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    for (int i = 0; i < 5; ++i) {
      util::Bytes data;
      if (p.rank() == 0) {
        util::ByteWriter w;
        w.put<std::int32_t>(i);
        // Vary the size so a non-FIFO fabric would reorder.
        w.put_raw(std::string(static_cast<std::size_t>((5 - i)) * 1000, 'x')
                      .data(),
                  static_cast<std::size_t>(5 - i) * 1000);
        data = std::move(w).take();
      }
      p.bcast(p.world(), 0, data);
      util::ByteReader r(data);
      if (r.get<std::int32_t>() != i) return;  // order violated; don't count
    }
    ++ok;
  });
  EXPECT_EQ(ok, 3);
}

TEST_F(MpiTest, GatherCollectsInRankOrder) {
  std::atomic<bool> ok{false};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    util::ByteWriter w;
    w.put<std::int32_t>(p.rank() * 11);
    auto gathered = p.gather(p.world(), 0, w.bytes());
    if (p.rank() == 0) {
      bool good = gathered.size() == 4;
      for (int i = 0; good && i < 4; ++i) {
        util::ByteReader r(gathered[static_cast<std::size_t>(i)]);
        good = r.get<std::int32_t>() == i * 11;
      }
      ok = good;
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
  EXPECT_TRUE(ok);
}

TEST_F(MpiTest, GatherToNonZeroRoot) {
  std::atomic<bool> ok{false};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    util::ByteWriter w;
    w.put<std::int32_t>(p.rank());
    auto gathered = p.gather(p.world(), 2, w.bytes());
    if (p.rank() == 2) ok = gathered.size() == 3;
  });
  EXPECT_TRUE(ok);
}

TEST_F(MpiTest, AllgatherEveryRankGetsAll) {
  std::atomic<int> ok{0};
  run_world(3, [&](Proc& p, const util::Bytes&) {
    util::ByteWriter w;
    w.put<std::int32_t>(p.rank() + 100);
    auto all = p.allgather(p.world(), w.bytes());
    bool good = all.size() == 3;
    for (int i = 0; good && i < 3; ++i) {
      util::ByteReader r(all[static_cast<std::size_t>(i)]);
      good = r.get<std::int32_t>() == i + 100;
    }
    if (good) ++ok;
  });
  EXPECT_EQ(ok, 3);
}

TEST_F(MpiTest, AllreduceSumDouble) {
  std::atomic<int> ok{0};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    const double result =
        p.allreduce(p.world(), static_cast<double>(p.rank()), ReduceOp::kSum);
    if (result == 0.0 + 1.0 + 2.0 + 3.0) ++ok;
  });
  EXPECT_EQ(ok, 4);
}

TEST_F(MpiTest, AllreduceMinMaxInt) {
  std::atomic<int> ok{0};
  run_world(4, [&](Proc& p, const util::Bytes&) {
    const auto lo = p.allreduce(p.world(),
                                static_cast<std::int64_t>(p.rank() * 5 + 3),
                                ReduceOp::kMin);
    const auto hi = p.allreduce(p.world(),
                                static_cast<std::int64_t>(p.rank() * 5 + 3),
                                ReduceOp::kMax);
    if (lo == 3 && hi == 18) ++ok;
  });
  EXPECT_EQ(ok, 4);
}

TEST_F(MpiTest, AllreduceSingleRank) {
  run_world(1, [&](Proc& p, const util::Bytes&) {
    EXPECT_EQ(p.allreduce(p.world(), 7.5, ReduceOp::kSum), 7.5);
  });
}

TEST_F(MpiTest, MixedCollectivesAndP2p) {
  // Interleave collectives with user p2p traffic on the same communicator;
  // the collective context bit must keep them separate.
  std::atomic<int> ok{0};
  run_world(2, [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) {
      util::ByteWriter w;
      w.put<std::int32_t>(1);
      p.send(p.world(), 1, 5, w.bytes());
      p.barrier(p.world());
      auto r = p.recv(p.world(), 1, 6);
      util::ByteReader rd(r.data);
      if (rd.get<std::int32_t>() == 2) ++ok;
    } else {
      p.barrier(p.world());
      auto r = p.recv(p.world(), 0, 5);
      util::ByteReader rd(r.data);
      if (rd.get<std::int32_t>() == 1) ++ok;
      util::ByteWriter w;
      w.put<std::int32_t>(2);
      p.send(p.world(), 0, 6, w.bytes());
    }
  });
  EXPECT_EQ(ok, 2);
}

}  // namespace
}  // namespace dac::minimpi
