// Runtime-level tests: context allocation, executable registry, launch
// options (env propagation, start stagger), and world handle bookkeeping.
#include "minimpi/runtime.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/sync.hpp"

#include "minimpi/proc.hpp"
#include "vnet/cluster.hpp"

namespace dac::minimpi {
namespace {

using namespace std::chrono_literals;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest()
      : cluster_([] {
          vnet::ClusterTopology t;
          t.node_count = 4;
          t.network.latency = std::chrono::microseconds(50);
          t.process_start_delay = std::chrono::microseconds(0);
          return t;
        }()),
        runtime_(cluster_) {}

  vnet::Cluster cluster_;
  Runtime runtime_;
};

TEST_F(RuntimeTest, ContextIdsAreUniqueAndEven) {
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 100; ++i) {
    const auto ctx = runtime_.allocate_context();
    EXPECT_EQ(ctx % 2, 0u);  // odd ids are reserved for merge derivatives
    EXPECT_LT(ctx, kCollectiveBit);
    EXPECT_TRUE(seen.insert(ctx).second);
  }
}

TEST_F(RuntimeTest, ExecutableRegistry) {
  EXPECT_FALSE(runtime_.has_executable("x"));
  runtime_.register_executable("x", [](Proc&, const util::Bytes&) {});
  EXPECT_TRUE(runtime_.has_executable("x"));
  // Re-registration replaces (latest wins).
  std::atomic<int> which{0};
  runtime_.register_executable("x",
                               [&](Proc&, const util::Bytes&) { which = 2; });
  runtime_.launch_world("x", {0}, {}).join();
  EXPECT_EQ(which, 2);
}

TEST_F(RuntimeTest, EnvPropagatesToAllRanks) {
  std::atomic<int> ok{0};
  runtime_.register_executable("env", [&](Proc& p, const util::Bytes&) {
    if (p.process().getenv("FLAVOR").value_or("") == "dac") ++ok;
  });
  LaunchOptions opts;
  opts.env = {{"FLAVOR", "dac"}};
  runtime_.launch_world("env", {0, 1, 2}, {}, opts).join();
  EXPECT_EQ(ok, 3);
}

TEST_F(RuntimeTest, StartStaggerDelaysHigherRanks) {
  dac::Mutex mu{"test.mu"};
  std::vector<std::pair<int, std::chrono::steady_clock::time_point>> starts;
  runtime_.register_executable("stagger", [&](Proc& p, const util::Bytes&) {
    dac::ScopedLock lock(mu);
    starts.emplace_back(p.rank(), dac::simtime::now());
  });
  LaunchOptions opts;
  opts.start_delay = std::chrono::microseconds(1000);
  opts.start_stagger = std::chrono::microseconds(20'000);
  runtime_.launch_world("stagger", {0, 1, 2}, {}, opts).join();
  ASSERT_EQ(starts.size(), 3u);
  std::sort(starts.begin(), starts.end());
  // Rank 2 starts >= ~40 ms after rank 0.
  const auto gap = starts[2].second - starts[0].second;
  EXPECT_GE(gap, 30ms);
}

TEST_F(RuntimeTest, WorldHandleDescribesWorld) {
  runtime_.register_executable("noop", [](Proc&, const util::Bytes&) {});
  auto h = runtime_.launch_world("noop", {1, 2}, {});
  EXPECT_EQ(h.group.size(), 2);
  EXPECT_EQ(h.processes.size(), 2u);
  EXPECT_EQ(h.group.members[0].node, 1);
  EXPECT_EQ(h.group.members[1].node, 2);
  h.join();
}

TEST_F(RuntimeTest, GroupRankOf) {
  Group g;
  g.members = {{1, 0}, {2, 5}};
  EXPECT_EQ(g.rank_of({2, 5}), 1);
  EXPECT_EQ(g.rank_of({9, 9}), -1);
}

TEST_F(RuntimeTest, SingletonProcHasSelfWorld) {
  std::atomic<bool> ok{false};
  auto p = cluster_.node(0).spawn({.name = "solo"}, [&](vnet::Process& proc) {
    auto mpi = Proc::make_singleton(runtime_, proc);
    ok = mpi->size() == 1 && mpi->rank() == 0 &&
         mpi->world().context != kControlContext;
  });
  p->join();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace dac::minimpi
