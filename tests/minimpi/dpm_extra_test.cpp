// Additional DPM coverage: port reuse across sequential accepts, connect
// from a multi-rank world, and spawn placement repetition (several ranks on
// one node).
#include <gtest/gtest.h>

#include <atomic>

#include "simtime/clock.hpp"
#include "mpi_test_util.hpp"
#include "util/error.hpp"

namespace dac::minimpi {
namespace {

using testing::MpiTest;

TEST_F(MpiTest, SequentialAcceptsOnOnePort) {
  // One acceptor serves two connectors in turn on the same port name, like
  // a daemon accepting clients one by one.
  std::atomic<int> served{0};
  runtime_.register_executable("acceptor", [&](Proc& p, const util::Bytes&) {
    p.publish_port("reuse-port");
    for (int i = 0; i < 2; ++i) {
      Comm inter = p.comm_accept("reuse-port", p.world(), 0);
      auto r = p.recv(inter, 0, 1);
      p.send(inter, 0, 2, std::move(r.data));
      ++served;
    }
  });
  runtime_.register_executable("client", [&](Proc& p, const util::Bytes&) {
    Comm inter = p.comm_connect("reuse-port", p.world(), 0);
    util::ByteWriter w;
    w.put<std::int32_t>(p.process().node().id());
    p.send(inter, 0, 1, std::move(w).take());
    (void)p.recv(inter, 0, 2);
  });
  auto acceptor = runtime_.launch_world("acceptor", {0}, {});
  auto c1 = runtime_.launch_world("client", {1}, {});
  c1.join();
  auto c2 = runtime_.launch_world("client", {2}, {});
  c2.join();
  acceptor.join();
  EXPECT_EQ(served, 2);
}

TEST_F(MpiTest, MultiRankWorldConnects) {
  // A 2-rank world connects to a 2-rank world: intercomm 2x2, merge -> 4.
  std::atomic<int> ok{0};
  runtime_.register_executable("accept2", [&](Proc& p, const util::Bytes&) {
    if (p.rank() == 0) p.publish_port("p22");
    Comm inter = p.comm_accept("p22", p.world(), 0);
    Comm merged = p.intercomm_merge(inter, true);
    if (merged.size() == 4 && merged.rank >= 2) ++ok;
  });
  runtime_.register_executable("connect2", [&](Proc& p, const util::Bytes&) {
    Comm inter = p.comm_connect("p22", p.world(), 0);
    Comm merged = p.intercomm_merge(inter, false);
    if (merged.size() == 4 && merged.rank == p.rank()) ++ok;
  });
  auto a = runtime_.launch_world("accept2", {0, 1}, {});
  auto c = runtime_.launch_world("connect2", {2, 3}, {});
  a.join();
  c.join();
  EXPECT_EQ(ok, 4);
}

TEST_F(MpiTest, SpawnSeveralRanksOnOneNode) {
  std::atomic<int> children{0};
  runtime_.register_executable("kid", [&](Proc& p, const util::Bytes&) {
    ++children;
    EXPECT_EQ(p.size(), 3);
    p.intercomm_merge(*p.parent_comm(), true);
  });
  runtime_.register_executable("parent", [&](Proc& p, const util::Bytes&) {
    WorldHandle h;
    // All three children on node 1.
    Comm inter = p.comm_spawn(p.world(), 0, "kid", {}, {1, 1, 1}, &h);
    Comm merged = p.intercomm_merge(inter, false);
    EXPECT_EQ(merged.size(), 4);
    h.join();
  });
  runtime_.launch_world("parent", {0}, {}).join();
  EXPECT_EQ(children, 3);
}

TEST_F(MpiTest, ClosePortPreventsLookup) {
  runtime_.publish_port("temp", {0, 0});
  EXPECT_TRUE(runtime_.lookup_port("temp").has_value());
  runtime_.close_port("temp");
  EXPECT_FALSE(runtime_.lookup_port("temp").has_value());
  runtime_.close_port("temp");  // idempotent
}

TEST_F(MpiTest, WorldHandleStopKillsChildren) {
  runtime_.register_executable("immortal", [](Proc& p, const util::Bytes&) {
    (void)p.recv(p.world(), kAnySource, 1);  // blocks forever
  });
  auto h = runtime_.launch_world("immortal", {0, 1, 2}, {});
  dac::simtime::sleep_for(std::chrono::milliseconds(20));  // NOLINT-DACSCHED(sleep-poll)
  h.stop();
  h.join();
  for (const auto& proc : h.processes) EXPECT_TRUE(proc->finished());
}

}  // namespace
}  // namespace dac::minimpi
