// Shared fixture for mini-MPI tests: a small fast-network cluster plus a
// runtime, and helpers to run an MPI world to completion.
#pragma once

#include <gtest/gtest.h>

#include <chrono>

#include "minimpi/proc.hpp"
#include "minimpi/runtime.hpp"
#include "vnet/cluster.hpp"

namespace dac::minimpi::testing {

inline vnet::ClusterTopology fast_topology(std::size_t nodes = 6) {
  vnet::ClusterTopology t;
  t.node_count = nodes;
  t.network.latency = std::chrono::microseconds(50);
  t.network.loopback_latency = std::chrono::microseconds(5);
  t.network.bytes_per_second = 5e9;
  t.process_start_delay = std::chrono::microseconds(100);
  return t;
}

class MpiTest : public ::testing::Test {
 protected:
  MpiTest() : cluster_(fast_topology()), runtime_(cluster_) {}

  // Runs `entry` as a world over nodes [0, n) and joins it.
  void run_world(int n, MpiEntry entry, const util::Bytes& args = {}) {
    runtime_.register_executable("test_exe", std::move(entry));
    std::vector<vnet::NodeId> placement;
    for (int i = 0; i < n; ++i) placement.push_back(i);
    auto handle = runtime_.launch_world("test_exe", placement, args);
    handle.join();
  }

  vnet::Cluster cluster_;
  Runtime runtime_;
};

}  // namespace dac::minimpi::testing
