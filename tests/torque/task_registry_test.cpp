#include "torque/task_registry.hpp"
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/queue.hpp"
#include "vnet/cluster.hpp"

namespace dac::torque {
namespace {

using namespace std::chrono_literals;

class TaskRegistryTest : public ::testing::Test {
 protected:
  TaskRegistryTest() : cluster_([] {
    vnet::ClusterTopology t;
    t.node_count = 3;
    t.process_start_delay = std::chrono::microseconds(0);
    return t;
  }()) {}

  // Spawns a process that blocks until killed; bumps `counter` on exit.
  // Waits until the task is actually blocking, so a kill cannot land before
  // the entry runs (which would skip it entirely, like SIGKILL pre-exec).
  vnet::ProcessPtr spawn_blocker(std::size_t node, std::atomic<int>& counter) {
    dac::Latch started{1};
    auto p = cluster_.node(node).spawn(
        {.name = "task"}, [&counter, &started](vnet::Process& proc) {
          auto ep = proc.open_endpoint();
          started.count_down();
          while (auto m = ep->recv()) {
          }
          ++counter;
        });
    started.wait();
    return p;
  }

  vnet::Cluster cluster_;
  TaskRegistry registry_;
};

TEST_F(TaskRegistryTest, KillNodeTasksOnlyAffectsThatNode) {
  std::atomic<int> killed{0};
  registry_.add(1, 0, spawn_blocker(0, killed));
  registry_.add(1, 1, spawn_blocker(1, killed));
  registry_.add(1, 1, spawn_blocker(1, killed));
  EXPECT_EQ(registry_.task_count(1), 3u);

  registry_.kill_node_tasks(1, 1);
  EXPECT_EQ(killed, 2);
  EXPECT_EQ(registry_.task_count(1), 1u);
  registry_.kill_job(1);
  EXPECT_EQ(killed, 3);
}

TEST_F(TaskRegistryTest, KillJobOnlyAffectsThatJob) {
  std::atomic<int> k1{0};
  std::atomic<int> k2{0};
  registry_.add(1, 0, spawn_blocker(0, k1));
  registry_.add(2, 0, spawn_blocker(0, k2));
  registry_.kill_job(1);
  EXPECT_EQ(k1, 1);
  EXPECT_EQ(k2, 0);
  EXPECT_EQ(registry_.task_count(2), 1u);
  registry_.kill_job(2);
}

TEST_F(TaskRegistryTest, KillUnknownJobIsNoop) {
  registry_.kill_job(99);
  registry_.kill_node_tasks(99, 0);
}

TEST_F(TaskRegistryTest, JoinJobWaitsWithoutKilling) {
  std::atomic<int> done{0};
  util::BlockingQueue<int> go;  // keeps the task alive past add()
  auto p = cluster_.node(0).spawn({.name = "quick"}, [&](vnet::Process&) {
    (void)go.pop();
    ++done;
  });
  registry_.add(3, 0, p);
  go.push(1);
  registry_.join_job(3);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(registry_.task_count(3), 0u);
}

TEST_F(TaskRegistryTest, ReapDropsFinished) {
  std::atomic<int> ignored{0};
  auto quick = cluster_.node(0).spawn({.name = "q"}, [](vnet::Process&) {});
  quick->join();
  registry_.add(1, 0, quick);
  registry_.add(1, 1, spawn_blocker(1, ignored));
  registry_.reap();
  EXPECT_EQ(registry_.task_count(1), 1u);  // the blocker remains
  registry_.kill_job(1);
}

}  // namespace
}  // namespace dac::torque
