// Walltime enforcement by the mother superior: jobs exceeding their
// requested walltime are killed and reported with a distinct exit status;
// well-behaved jobs are untouched; enforcement can be disabled.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "harness/scenario.hpp"

namespace dac::torque {
namespace {

using namespace std::chrono_literals;

core::DacClusterConfig fast_config(bool enforce) {
  auto c = core::DacClusterConfig::fast();
  c.compute_nodes = 1;
  c.accel_nodes = 1;
  c.enforce_walltime = enforce;
  // Speed up enforcement without shrinking the heartbeat interval — a short
  // heartbeat interval makes the liveness window so tight that a loaded test
  // host can trip false down-detection.
  c.timing.mom_walltime_check_interval = 10ms;
  return c;
}

JobId submit_sleep(core::DacCluster& cluster, int runtime_ms,
                   int walltime_ms) {
  util::ByteWriter w;
  w.put<std::uint64_t>(static_cast<std::uint64_t>(runtime_ms));
  return cluster.submit_program(core::kSleepProgram, 1, 0,
                                std::move(w).take(),
                                std::chrono::milliseconds(walltime_ms));
}

TEST(Walltime, OverrunningJobIsKilled) {
  core::DacCluster cluster(fast_config(true));
  const auto id = submit_sleep(cluster, /*runtime=*/5000, /*walltime=*/50);
  auto info = cluster.wait_job(id, 20'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->exit_status, kExitWalltime);
  // It ran far shorter than its sleep — the kill ended it.
  EXPECT_LT(info->end_time - info->start_time, 2.0);
  for (const auto& n : cluster.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST(Walltime, CompliantJobFinishesCleanly) {
  core::DacCluster cluster(fast_config(true));
  const auto id = submit_sleep(cluster, /*runtime=*/20, /*walltime=*/5000);
  auto info = cluster.wait_job(id, 20'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->exit_status, kExitOk);
}

TEST(Walltime, EnforcementCanBeDisabled) {
  core::DacCluster cluster(fast_config(false));
  const auto id = submit_sleep(cluster, /*runtime=*/150, /*walltime=*/20);
  auto info = cluster.wait_job(id, 20'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->exit_status, kExitOk);  // overran, but not killed
  EXPECT_GE(info->end_time - info->start_time, 0.1);
}

// Ported onto the Scenario harness: beyond the node-table check, the trace
// proves the reclaim — every alloc.assign of the killed job has a matching
// alloc.release, and the replay never oversubscribes a host.
TEST(Walltime, KilledJobWithAcceleratorsReleasesThem) {
  dac::testing::Scenario s(fast_config(true));
  s.program("hog", [](core::JobContext& ctx) {
    (void)ctx.session().ac_init();
    core::interruptible_sleep(ctx, 5s);  // never finishes in time
  });
  torque::JobSpec spec;
  spec.name = spec.program = "hog";
  spec.resources.nodes = 1;
  spec.resources.acpn = 1;
  spec.resources.walltime = 80ms;
  const auto id = s.cluster().submit(spec);
  auto info = s.wait_job(id, 20'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->exit_status, kExitWalltime);
  for (const auto& n : s.cluster().client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
  ASSERT_NE(s.await_job_trace(id), 0u);
  auto view = s.trace();
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));
  EXPECT_FALSE(view.named("alloc.assign").empty());
  EXPECT_EQ(view.named("alloc.assign").size(),
            view.named("alloc.release").size());
}

}  // namespace
}  // namespace dac::torque
