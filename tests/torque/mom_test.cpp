// pbs_mom unit tests: the sister-side protocol (JOIN_JOB / DYNJOIN_JOB /
// DISJOIN_JOB / JOB_UPDATE) driven directly with synthetic requests against
// a fake server, without a scheduler or mother superior.
#include "torque/mom.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include "util/sync.hpp"

#include "minimpi/runtime.hpp"
#include "vnet/cluster.hpp"

namespace dac::torque {
namespace {

using namespace std::chrono_literals;

class MomTest : public ::testing::Test {
 protected:
  MomTest()
      : cluster_([] {
          vnet::ClusterTopology t;
          t.node_count = 3;
          t.network.latency = std::chrono::microseconds(50);
          t.process_start_delay = std::chrono::microseconds(0);
          return t;
        }()),
        runtime_(cluster_) {
    // Fake server: replies ok to registrations and remembers the mom's
    // long-lived endpoint address from the registration payload.
    server_ep_ = cluster_.node(0).open_endpoint();
    server_proc_ = cluster_.node(0).spawn(
        {.name = "fake_server"}, [this](vnet::Process& proc) {
          proc.adopt_mailbox(server_ep_->mailbox_weak());
          while (auto msg = server_ep_->recv()) {
            auto req = rpc::parse_request(*msg);
            if (req.type == MsgType::kRegisterNode) {
              util::ByteReader r(req.body);
              const auto st = get_node_status(r);
              {
                dac::ScopedLock lock(mu_);
                mom_addr_ = st.mom_addr;
                registered_ = true;
              }
              rpc::reply_ok(*server_ep_, req);
            }
          }
        });

    MomConfig mc;
    mc.kind = NodeKind::kAccelerator;
    mc.np = 1;
    mc.server = server_ep_->address();
    mc.timing = BatchTiming::fast();
    mom_ = std::make_unique<PbsMom>(cluster_.node(1), mc, runtime_, tasks_);
    mom_proc_ = cluster_.node(1).spawn(
        {.name = "pbs_mom"},
        [this](vnet::Process& proc) { mom_->run(proc); });

    const auto deadline = dac::simtime::now() + 5s;
    while (dac::simtime::now() < deadline) {
      dac::ScopedLock lock(mu_);
      if (registered_) break;
    }
  }

  ~MomTest() override { cluster_.shutdown(); }

  vnet::Address mom_addr() {
    dac::ScopedLock lock(mu_);
    return mom_addr_;
  }

  util::Bytes join_body(JobId id) {
    JobInfo j;
    j.id = id;
    j.spec.name = "j";
    util::ByteWriter w;
    put_job_info(w, j);
    put_host_refs(w, {{"cn0", 2, {2, 0}}, {"ac0", 1, mom_addr()}});
    return std::move(w).take();
  }

  util::Bytes set_body(JobId job, std::uint64_t client) {
    util::ByteWriter w;
    w.put<std::uint64_t>(job);
    w.put<std::uint64_t>(client);
    put_host_refs(w, {{"ac0", 1, mom_addr()}});
    return std::move(w).take();
  }

  vnet::Cluster cluster_;
  minimpi::Runtime runtime_;
  TaskRegistry tasks_;
  std::unique_ptr<vnet::Endpoint> server_ep_;
  vnet::ProcessPtr server_proc_;
  std::unique_ptr<PbsMom> mom_;
  vnet::ProcessPtr mom_proc_;

  dac::Mutex mu_{"test.events"};
  bool registered_ = false;
  vnet::Address mom_addr_;
};

TEST_F(MomTest, RegistersWithServer) {
  EXPECT_TRUE(mom_addr().valid());
}

TEST_F(MomTest, JoinJobAcks) {
  auto reply = rpc::call(cluster_.node(2), mom_addr(), MsgType::kJoinJob,
                         join_body(7));
  EXPECT_TRUE(reply.empty());  // plain ok
}

TEST_F(MomTest, DynJoinThenDisjoinAck) {
  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kJoinJob,
                  join_body(8));
  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kDynJoinJob,
                  set_body(8, 42));
  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kDisjoinJob,
                  set_body(8, 42));
}

TEST_F(MomTest, DisjoinKillsOnlyThatSetsTasks) {
  std::atomic<bool> base_killed{false};
  std::atomic<bool> set_killed{false};
  dac::Latch base_done{1};
  dac::Latch set_done{1};
  auto spawn_task = [&](std::atomic<bool>& flag, dac::Latch& done,
                        std::uint64_t set) {
    dac::Latch started{1};
    auto p = cluster_.node(1).spawn(
        {.name = "task"}, [&flag, &done, &started](vnet::Process& proc) {
          auto ep = proc.open_endpoint();
          started.count_down();
          while (auto m = ep->recv()) {
          }
          flag = true;
          done.count_down();
        });
    started.wait();
    tasks_.add(9, cluster_.node(1).id(), p, set);
  };
  spawn_task(base_killed, base_done, 0);   // base job task
  spawn_task(set_killed, set_done, 77);    // dynamic-set task

  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kJoinJob,
                  join_body(9));
  // Set-scoped disjoin: only the set-77 task dies.
  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kDisjoinJob,
                  set_body(9, 77));
  set_done.wait();
  EXPECT_TRUE(set_killed);
  EXPECT_FALSE(base_killed);

  // Full disjoin (client 0): the base task dies too.
  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kDisjoinJob,
                  set_body(9, 0));
  base_done.wait();
  EXPECT_TRUE(base_killed);
}

TEST_F(MomTest, JobUpdateNeedsNoAck) {
  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kJoinJob,
                  join_body(10));
  auto ep = cluster_.node(2).open_endpoint();
  rpc::notify(*ep, mom_addr(), MsgType::kJobUpdate, set_body(10, 5));
  // The mom stays healthy: a later call still works.
  (void)rpc::call(cluster_.node(2), mom_addr(), MsgType::kDisjoinJob,
                  set_body(10, 0));
}

TEST_F(MomTest, UnknownRequestTypeErrors) {
  EXPECT_THROW((void)rpc::call(cluster_.node(2), mom_addr(),
                               MsgType::kRunJob, {}),
               rpc::CallError);
}

}  // namespace
}  // namespace dac::torque
