// IFL client behaviors not covered by the server tests: polling helpers,
// terminal-state short-circuits, and missing-job queries.
#include "torque/ifl.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include "torque/server.hpp"
#include "vnet/cluster.hpp"

namespace dac::torque {
namespace {

using namespace std::chrono_literals;

class IflTest : public ::testing::Test {
 protected:
  IflTest()
      : cluster_([] {
          vnet::ClusterTopology t;
          t.node_count = 2;
          t.network.latency = std::chrono::microseconds(50);
          t.process_start_delay = std::chrono::microseconds(0);
          return t;
        }()) {
    auto timing = BatchTiming::fast();
    timing.server_service_cost = std::chrono::microseconds(0);
    server_ = std::make_unique<PbsServer>(cluster_.node(0), timing);
    proc_ = cluster_.node(0).spawn(
        {.name = "pbs_server"},
        [this](vnet::Process& p) { server_->run(p); });
  }

  Ifl client() { return Ifl(cluster_.node(1), server_->address()); }

  vnet::Cluster cluster_;
  std::unique_ptr<PbsServer> server_;
  vnet::ProcessPtr proc_;
};

TEST_F(IflTest, StatJobMissingReturnsNullopt) {
  EXPECT_FALSE(client().stat_job(999).has_value());
}

TEST_F(IflTest, WaitForStateTimesOutOnStuckJob) {
  JobSpec spec;
  spec.name = "stuck";
  spec.program = "x";  // never scheduled: no nodes registered
  const auto id = client().submit(spec);
  auto info = client().wait_for_state(id, JobState::kRunning, 100ms, 5ms);
  EXPECT_FALSE(info.has_value());
}

TEST_F(IflTest, WaitForStateReturnsImmediatelyOnMatch) {
  JobSpec spec;
  spec.name = "q";
  spec.program = "x";
  const auto id = client().submit(spec);
  auto info = client().wait_for_state(id, JobState::kQueued, 5'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kQueued);
}

TEST_F(IflTest, WaitForStateStopsAtTerminalState) {
  JobSpec spec;
  spec.name = "c";
  spec.program = "x";
  const auto id = client().submit(spec);
  client().delete_job(id);
  // Waiting for kRunning must return promptly with the terminal state
  // instead of burning the whole timeout.
  const auto start = dac::simtime::now();
  auto info = client().wait_for_state(id, JobState::kRunning, 10'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kCancelled);
  EXPECT_LT(dac::simtime::now() - start, 2s);
}

TEST_F(IflTest, StatNodesEmptyBeforeRegistration) {
  EXPECT_TRUE(client().stat_nodes().empty());
}

TEST_F(IflTest, SubmitCarriesAllSpecFields) {
  JobSpec spec;
  spec.name = "full";
  spec.owner = "carol";
  spec.program = "prog";
  spec.resources = {2, 4, 3, std::chrono::milliseconds(7777)};
  spec.priority = 2;
  const auto id = client().submit(spec);
  auto info = client().stat_job(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->spec.owner, "carol");
  EXPECT_EQ(info->spec.resources.acpn, 3);
  EXPECT_EQ(info->spec.resources.walltime.count(), 7777);
  EXPECT_EQ(info->spec.priority, 2);
  EXPECT_EQ(info->exit_status, kExitOk);
}

}  // namespace
}  // namespace dac::torque
