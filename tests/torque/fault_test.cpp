// Fault-tolerance tests (the paper's §VI future work, implemented here):
// mom heartbeats, server-side down detection, scheduler avoidance of dead
// nodes, and recovery through mom re-registration.
#include <gtest/gtest.h>

#include <atomic>

#include "util/sync.hpp"

#include "simtime/clock.hpp"
#include "core/cluster.hpp"

namespace dac::torque {
namespace {

using namespace std::chrono_literals;

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : cluster_([] {
    auto c = core::DacClusterConfig::fast();
    c.compute_nodes = 2;
    c.accel_nodes = 3;
    // Fast heartbeats so down-detection happens within test budgets, with
    // enough slack that a merely busy mom is not declared dead.
    c.timing.mom_heartbeat_interval = std::chrono::milliseconds(10);
    c.timing.heartbeat_stale_factor = 10;
    return c;
  }()) {}

  // cluster node index of accelerator i.
  std::size_t ac_index(std::size_t i) const { return 1 + 2 + i; }

  bool node_up(const std::string& hostname) {
    for (const auto& n : cluster_.client().stat_nodes()) {
      if (n.hostname == hostname) return n.up;
    }
    return false;
  }

  // Polls until `hostname` reaches the wanted liveness (or times out).
  bool await_liveness(const std::string& hostname, bool want,
                      std::chrono::milliseconds timeout = 3000ms) {
    const auto deadline = dac::simtime::now() + timeout;
    while (dac::simtime::now() < deadline) {
      if (node_up(hostname) == want) return true;
      dac::simtime::sleep_for(5ms);  // NOLINT-DACSCHED(sleep-poll)
    }
    return false;
  }

  core::DacCluster cluster_;
};

TEST_F(FaultTest, AllNodesInitiallyUp) {
  for (const auto& n : cluster_.client().stat_nodes()) {
    EXPECT_TRUE(n.up) << n.hostname;
  }
}

TEST_F(FaultTest, DeadMomMarksNodeDown) {
  cluster_.fail_node(ac_index(0));
  EXPECT_TRUE(await_liveness("ac0", false));
  // Others unaffected.
  EXPECT_TRUE(node_up("ac1"));
  EXPECT_TRUE(node_up("cn0"));
}

TEST_F(FaultTest, SchedulerAvoidsDownNode) {
  cluster_.fail_node(ac_index(2));
  ASSERT_TRUE(await_liveness("ac2", false));

  std::atomic<int> granted_full{-1};
  std::atomic<int> granted_partial{-1};
  cluster_.register_program("ft_dyn", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    // All 3 accelerators cannot be granted: one node is down.
    auto full = s.ac_get(3);
    granted_full = full.granted ? 1 : 0;
    // The two live ones can.
    auto partial = s.ac_get(2);
    granted_partial = partial.granted ? 1 : 0;
    if (partial.granted) {
      for (const auto& h : partial.reply.hosts) EXPECT_NE(h, "ac2");
      s.ac_free(partial.client_id);
    }
    s.ac_finalize();
  });
  const auto id = cluster_.submit_program("ft_dyn", 1, 0);
  ASSERT_TRUE(cluster_.wait_job(id, 30'000ms).has_value());
  EXPECT_EQ(granted_full, 0);
  EXPECT_EQ(granted_partial, 1);
}

TEST_F(FaultTest, StaticAllocationSkipsDownNode) {
  cluster_.fail_node(ac_index(1));
  ASSERT_TRUE(await_liveness("ac1", false));

  std::atomic<bool> ran{false};
  cluster_.register_program("ft_static", [&](core::JobContext& ctx) {
    auto handles = ctx.session().ac_init();
    EXPECT_EQ(handles.size(), 2u);
    ctx.session().ac_finalize();
    ran = true;
  });
  // acpn=2 with only 2 live accelerator nodes: must avoid ac1.
  const auto id = cluster_.submit_program("ft_static", 1, 2);
  auto info = cluster_.wait_job(id, 30'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(ran);
  for (const auto& h : info->accel_hosts) EXPECT_NE(h, "ac1");
}

TEST_F(FaultTest, MomRestartBringsNodeBack) {
  cluster_.fail_node(ac_index(0));
  ASSERT_TRUE(await_liveness("ac0", false));
  cluster_.recover_node(ac_index(0));
  ASSERT_TRUE(await_liveness("ac0", true));

  // The recovered node is usable again.
  std::atomic<bool> ok{false};
  cluster_.register_program("ft_recover", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    auto got = s.ac_get(3);  // needs all three, including ac0
    ok = got.granted;
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
  });
  const auto id = cluster_.submit_program("ft_recover", 1, 0);
  ASSERT_TRUE(cluster_.wait_job(id, 30'000ms).has_value());
  EXPECT_TRUE(ok);
}

TEST_F(FaultTest, ComputeNodeFailureDetected) {
  cluster_.fail_node(1);  // cn0
  EXPECT_TRUE(await_liveness("cn0", false));
  // Jobs still run on the remaining compute node.
  const auto id = cluster_.submit_program(core::kNoopProgram, 1, 0);
  auto info = cluster_.wait_job(id, 30'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->compute_hosts.front(), "cn1");
}

TEST_F(FaultTest, JobOnDeadComputeNodeIsFailedAndFreed) {
  // A long job runs on a compute node that then dies: the server must fail
  // the job and release everything it held.
  dac::Latch started{1};
  cluster_.register_program("victim", [&](core::JobContext& ctx) {
    started.count_down();
    core::interruptible_sleep(ctx, 60'000ms);
  });
  torque::JobSpec spec;
  spec.name = spec.program = "victim";
  spec.resources.nodes = 1;
  spec.resources.acpn = 1;  // also holds an accelerator
  spec.resources.walltime = std::chrono::milliseconds(120'000);
  const auto id = cluster_.submit(spec);
  started.wait();

  auto running = cluster_.client().stat_job(id);
  ASSERT_TRUE(running.has_value());
  const auto host = running->compute_hosts.front();
  const std::size_t idx = host == "cn0" ? 1 : 2;
  cluster_.fail_node(idx);
  ASSERT_TRUE(await_liveness(host, false));

  // The server notices on its next node refresh and fails the job.
  const auto deadline = dac::simtime::now() + 5s;
  std::optional<torque::JobInfo> info;
  while (dac::simtime::now() < deadline) {
    info = cluster_.client().stat_job(id);
    if (info && info->state == torque::JobState::kCancelled) break;
    dac::simtime::sleep_for(10ms);  // NOLINT-DACSCHED(sleep-poll)
  }
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, torque::JobState::kCancelled);
  EXPECT_EQ(info->exit_status, torque::kExitKilled);
  for (const auto& n : cluster_.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

}  // namespace
}  // namespace dac::torque
