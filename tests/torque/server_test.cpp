// pbs_server unit tests: drive the server directly through the IFL and a
// hand-rolled fake scheduler, without moms or a real Maui. Covers queueing,
// the DYNQUEUED state machine, per-job dynamic-request serialization, and
// the scheduler-facing allocation protocol.
#include "torque/server.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include "torque/ifl.hpp"
#include "vnet/cluster.hpp"

namespace dac::torque {
namespace {

using namespace std::chrono_literals;

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : cluster_([] {
          vnet::ClusterTopology t;
          t.node_count = 3;
          t.network.latency = std::chrono::microseconds(50);
          t.process_start_delay = std::chrono::microseconds(0);
          return t;
        }()) {
    auto timing = BatchTiming::fast();
    timing.server_service_cost = std::chrono::microseconds(0);
    server_ = std::make_unique<PbsServer>(cluster_.node(0), timing);
    server_proc_ = cluster_.node(0).spawn(
        {.name = "pbs_server"},
        [this](vnet::Process& proc) { server_->run(proc); });
  }

  Ifl client() { return Ifl(cluster_.node(1), server_->address()); }

  JobId submit_simple(const std::string& program = "") {
    JobSpec spec;
    spec.name = "t";
    spec.program = program;
    return client().submit(spec);
  }

  void register_node(const std::string& name, NodeKind kind, int np,
                     vnet::Address mom) {
    NodeStatus st;
    st.hostname = name;
    st.node_id = mom.node;
    st.kind = kind;
    st.np = np;
    st.mom_addr = mom;
    util::ByteWriter w;
    put_node_status(w, st);
    (void)rpc::call(cluster_.node(1), server_->address(),
                    MsgType::kRegisterNode, std::move(w).take());
  }

  // Submits a job with a program and marks it running via a scheduler-style
  // RUN_JOB (the fake mom address just drops the MOM_RUN_JOB notify).
  JobId start_running_job() {
    const auto id = submit_simple("app");
    util::ByteWriter w;
    w.put<std::uint64_t>(id);
    w.put_string_vector({"cn0"});
    w.put_string_vector({});
    (void)rpc::call(cluster_.node(2), server_->address(), MsgType::kRunJob,
                    std::move(w).take());
    return id;
  }

  QueueSnapshot get_queue(vnet::Node& from) {
    auto reply = rpc::call(from, server_->address(), MsgType::kGetQueue, {});
    util::ByteReader r(reply);
    return get_queue_snapshot(r);
  }

  vnet::Cluster cluster_;
  std::unique_ptr<PbsServer> server_;
  vnet::ProcessPtr server_proc_;
};

TEST_F(ServerTest, SubmitAssignsIncreasingIds) {
  const auto a = submit_simple();
  const auto b = submit_simple();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(b, a + 1);
}

TEST_F(ServerTest, StatJobsShowsQueued) {
  const auto id = submit_simple();
  auto info = client().stat_job(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kQueued);
  EXPECT_GE(info->submit_time, 0.0);
}

TEST_F(ServerTest, DeleteQueuedJobCancels) {
  const auto id = submit_simple();
  client().delete_job(id);
  auto info = client().stat_job(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kCancelled);
}

TEST_F(ServerTest, DeleteUnknownJobErrors) {
  EXPECT_THROW(client().delete_job(424242), rpc::CallError);
}

TEST_F(ServerTest, DynGetOnUnknownJobErrors) {
  EXPECT_THROW((void)client().dynget(999, 1), rpc::CallError);
}

TEST_F(ServerTest, DynGetWithBadCountErrors) {
  register_node("cn0", NodeKind::kCompute, 8, {1, 50});
  const auto id = start_running_job();
  EXPECT_THROW((void)client().dynget(id, 0), rpc::CallError);
  EXPECT_THROW((void)client().dynget(id, -3), rpc::CallError);
}

TEST_F(ServerTest, DynGetOnQueuedJobErrors) {
  const auto id = submit_simple("app");  // queued, never scheduled
  EXPECT_THROW((void)client().dynget(id, 1), rpc::CallError);
}

TEST_F(ServerTest, AlterQueuedJobUpdatesAttributes) {
  const auto id = submit_simple("app");
  Ifl::Alter alter;
  alter.priority = 9;
  alter.walltime = std::chrono::milliseconds(12345);
  alter.name = "renamed";
  client().alter_job(id, alter);
  auto info = client().stat_job(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->spec.priority, 9);
  EXPECT_EQ(info->spec.resources.walltime.count(), 12345);
  EXPECT_EQ(info->spec.name, "renamed");
}

TEST_F(ServerTest, AlterPartialOnlyChangesSetFields) {
  const auto id = submit_simple("app");
  Ifl::Alter alter;
  alter.priority = 3;
  client().alter_job(id, alter);
  auto info = client().stat_job(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->spec.priority, 3);
  EXPECT_EQ(info->spec.name, "t");  // untouched
}

TEST_F(ServerTest, AlterRunningJobErrors) {
  register_node("cn9", NodeKind::kCompute, 8, {1, 50});
  const auto id = submit_simple("app");
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put_string_vector({"cn9"});
  w.put_string_vector({});
  (void)rpc::call(cluster_.node(2), server_->address(), MsgType::kRunJob,
                  std::move(w).take());
  Ifl::Alter alter;
  alter.priority = 1;
  EXPECT_THROW(client().alter_job(id, alter), rpc::CallError);
}

TEST_F(ServerTest, AlterUnknownJobErrors) {
  Ifl::Alter alter;
  alter.priority = 1;
  EXPECT_THROW(client().alter_job(999, alter), rpc::CallError);
}

TEST_F(ServerTest, DynFreeUnknownClientErrors) {
  const auto id = submit_simple();
  EXPECT_THROW(client().dynfree(id, 77), rpc::CallError);
}

TEST_F(ServerTest, NodeRegistrationVisibleInStat) {
  register_node("cn0", NodeKind::kCompute, 8, {1, 50});
  register_node("ac0", NodeKind::kAccelerator, 1, {2, 50});
  auto nodes = client().stat_nodes();
  ASSERT_EQ(nodes.size(), 2u);
}

TEST_F(ServerTest, SchedulerWakeOnSubmit) {
  // Register a fake scheduler and expect a wake after a submission.
  auto sched_ep = cluster_.node(1).open_endpoint();
  util::ByteWriter reg;
  reg.put<std::int32_t>(sched_ep->address().node);
  reg.put<std::int32_t>(sched_ep->address().port);
  (void)rpc::call(cluster_.node(1), server_->address(),
                  MsgType::kRegisterScheduler, std::move(reg).take());
  // Registration itself triggers one wake; drain it.
  (void)sched_ep->recv_for(1000ms);
  // Wakes are edge-triggered: the server holds further wakes until the
  // scheduler fetches state (which disarms the gate), so a real scheduler
  // gets exactly one wake per fetch no matter how many events pile up.
  (void)submit_simple();
  EXPECT_FALSE(sched_ep->recv_for(50ms).has_value());  // still coalesced
  (void)rpc::call(cluster_.node(1), server_->address(), MsgType::kGetQueue,
                  {});
  (void)submit_simple();
  auto wake = sched_ep->recv_for(1000ms);
  ASSERT_TRUE(wake.has_value());
  EXPECT_EQ(wake->type, as_u32(MsgType::kSchedWake));
}

TEST_F(ServerTest, QueueSnapshotContainsDynEntries) {
  register_node("cn0", NodeKind::kCompute, 8, {1, 50});
  register_node("ac0", NodeKind::kAccelerator, 1, {2, 50});
  const auto id = start_running_job();

  // Issue a dynget from a helper thread (it blocks); then inspect the
  // queue from here.
  std::thread getter([&] {
    auto ifl = client();
    try {
      (void)ifl.dynget(id, 1, 5'000ms);
    } catch (const std::exception&) {
    }
  });
  // Wait for the dyn entry to appear.
  QueueSnapshot snap;
  for (int i = 0; i < 100 && snap.dyn.empty(); ++i) {
    dac::simtime::sleep_for(5ms);  // NOLINT-DACSCHED(sleep-poll)
    snap = get_queue(cluster_.node(2));
  }
  ASSERT_EQ(snap.dyn.size(), 1u);
  EXPECT_EQ(snap.dyn[0].job, id);
  EXPECT_EQ(snap.dyn[0].count, 1);
  // Job must be in the special DYNQUEUED state.
  auto info = client().stat_job(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kDynQueued);

  // Reject it like a scheduler would, releasing the blocked dynget.
  util::ByteWriter w;
  w.put<std::uint64_t>(snap.dyn[0].dyn_id);
  w.put<std::uint64_t>(0);
  (void)rpc::call(cluster_.node(2), server_->address(), MsgType::kRejectDyn,
                  std::move(w).take());
  getter.join();
  info = client().stat_job(id);
  EXPECT_EQ(info->state, JobState::kRunning);
}

TEST_F(ServerTest, SecondDynRequestWaitsBehindFirst) {
  register_node("cn0", NodeKind::kCompute, 8, {1, 50});
  const auto id = start_running_job();
  std::atomic<int> rejected{0};
  auto getter = [&] {
    auto ifl = client();
    auto r = ifl.dynget(id, 1, 10'000ms);
    if (!r.granted) ++rejected;
  };
  std::thread g1(getter);
  // Wait for the first to become active.
  QueueSnapshot snap;
  for (int i = 0; i < 100 && snap.dyn.empty(); ++i) {
    dac::simtime::sleep_for(5ms);  // NOLINT-DACSCHED(sleep-poll)
    snap = get_queue(cluster_.node(2));
  }
  ASSERT_EQ(snap.dyn.size(), 1u);
  std::thread g2(getter);
  dac::simtime::sleep_for(50ms);  // NOLINT-DACSCHED(sleep-poll)
  // The second request must NOT be visible yet (one at a time per job).
  snap = get_queue(cluster_.node(2));
  ASSERT_EQ(snap.dyn.size(), 1u);
  const auto first_dyn = snap.dyn[0].dyn_id;

  // Reject the first; the second must then surface.
  util::ByteWriter w;
  w.put<std::uint64_t>(first_dyn);
  w.put<std::uint64_t>(0);
  (void)rpc::call(cluster_.node(2), server_->address(), MsgType::kRejectDyn,
                  std::move(w).take());
  for (int i = 0; i < 100; ++i) {
    snap = get_queue(cluster_.node(2));
    if (!snap.dyn.empty() && snap.dyn[0].dyn_id != first_dyn) break;
    dac::simtime::sleep_for(5ms);  // NOLINT-DACSCHED(sleep-poll)
  }
  ASSERT_EQ(snap.dyn.size(), 1u);
  EXPECT_NE(snap.dyn[0].dyn_id, first_dyn);
  w = {};
  w.put<std::uint64_t>(snap.dyn[0].dyn_id);
  w.put<std::uint64_t>(0);
  (void)rpc::call(cluster_.node(2), server_->address(), MsgType::kRejectDyn,
                  std::move(w).take());
  g1.join();
  g2.join();
  EXPECT_EQ(rejected, 2);
}

TEST_F(ServerTest, RunJobAllocatesAndEmptyProgramCompletes) {
  register_node("cn0", NodeKind::kCompute, 8, {1, 50});
  const auto id = submit_simple("");  // empty program: load-only job

  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put_string_vector({"cn0"});
  w.put_string_vector({});
  (void)rpc::call(cluster_.node(2), server_->address(), MsgType::kRunJob,
                  std::move(w).take());
  auto info = client().stat_job(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kComplete);
  // Resources released again.
  EXPECT_EQ(client().stat_nodes().at(0).used, 0);
}

TEST_F(ServerTest, RunJobOnUnknownJobErrors) {
  util::ByteWriter w;
  w.put<std::uint64_t>(4711);
  w.put_string_vector({"cn0"});
  w.put_string_vector({});
  EXPECT_THROW((void)rpc::call(cluster_.node(2), server_->address(),
                               MsgType::kRunJob, std::move(w).take()),
               rpc::CallError);
}

TEST_F(ServerTest, RunJobAllocationConflictRollsBack) {
  register_node("cn0", NodeKind::kCompute, 8, {1, 50});
  register_node("ac0", NodeKind::kAccelerator, 1, {2, 50});
  // Occupy the accelerator through another job first.
  const auto holder = submit_simple("");
  {
    util::ByteWriter w;
    w.put<std::uint64_t>(holder);
    w.put_string_vector({"cn0"});
    w.put_string_vector({"ac0"});
    (void)rpc::call(cluster_.node(2), server_->address(), MsgType::kRunJob,
                    std::move(w).take());
  }
  // holder completes instantly (empty program) and frees everything; so
  // instead pre-assign by a direct second job racing: allocate ac0 twice in
  // one shot by claiming it for a job while claiming a bogus host too.
  const auto id = submit_simple("");
  util::ByteWriter w;
  w.put<std::uint64_t>(id);
  w.put_string_vector({"cn0", "ghost-host"});
  w.put_string_vector({});
  EXPECT_THROW((void)rpc::call(cluster_.node(2), server_->address(),
                               MsgType::kRunJob, std::move(w).take()),
               rpc::CallError);
  // The partial cn0 assignment must have been rolled back.
  for (const auto& n : client().stat_nodes()) EXPECT_EQ(n.used, 0);
  auto info = client().stat_job(id);
  EXPECT_EQ(info->state, JobState::kQueued);
}

}  // namespace
}  // namespace dac::torque
