#include "torque/rpc.hpp"
#include "util/sync.hpp"

#include <gtest/gtest.h>


#include "vnet/cluster.hpp"

namespace dac::torque::rpc {
namespace {

using namespace std::chrono_literals;

vnet::ClusterTopology topo() {
  vnet::ClusterTopology t;
  t.node_count = 2;
  t.network.latency = std::chrono::microseconds(50);
  t.process_start_delay = std::chrono::microseconds(0);
  return t;
}

// A tiny echo server: replies ok with the body reversed; errors on type
// kDeleteJob.
vnet::ProcessPtr start_echo(vnet::Node& node, vnet::Address* out) {
  auto ep = node.open_endpoint();
  *out = ep->address();
  auto holder = std::make_shared<std::unique_ptr<vnet::Endpoint>>(
      std::move(ep));
  return node.spawn({.name = "echo"}, [holder](vnet::Process& proc) {
    auto endpoint = std::move(*holder);
    proc.adopt_mailbox(endpoint->mailbox_weak());
    while (auto msg = endpoint->recv()) {
      auto req = parse_request(*msg);
      if (req.type == MsgType::kDeleteJob) {
        reply_error(*endpoint, req, ReplyCode::kUnknownJob, "nope");
        continue;
      }
      if (req.type == MsgType::kStatNodes) continue;  // never replies
      util::Bytes reversed(req.body.rbegin(), req.body.rend());
      reply_ok(*endpoint, req, std::move(reversed));
    }
  });
}

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : cluster_(topo()) {
    server_ = start_echo(cluster_.node(1), &addr_);
  }
  ~RpcTest() override {
    server_->request_stop();
    server_->join();
  }

  vnet::Cluster cluster_;
  vnet::ProcessPtr server_;
  vnet::Address addr_;
};

TEST_F(RpcTest, CallRoundTrip) {
  util::Bytes body{std::byte{1}, std::byte{2}, std::byte{3}};
  auto reply = call(cluster_.node(0), addr_, MsgType::kSubmit, body);
  EXPECT_EQ(reply,
            (util::Bytes{std::byte{3}, std::byte{2}, std::byte{1}}));
}

TEST_F(RpcTest, EmptyBody) {
  auto reply = call(cluster_.node(0), addr_, MsgType::kSubmit, {});
  EXPECT_TRUE(reply.empty());
}

TEST_F(RpcTest, ErrorReplyThrowsCallError) {
  try {
    (void)call(cluster_.node(0), addr_, MsgType::kDeleteJob, {});
    FAIL() << "expected CallError";
  } catch (const CallError& e) {
    EXPECT_EQ(e.code(), ReplyCode::kUnknownJob);
    EXPECT_STREQ(e.what(), "nope");
  }
}

TEST_F(RpcTest, TimeoutThrowsProtocolError) {
  EXPECT_THROW(
      (void)call(cluster_.node(0), addr_, MsgType::kStatNodes, {}, 50ms),
      util::ProtocolError);
}

TEST_F(RpcTest, CallToDeadAddressTimesOut) {
  EXPECT_THROW((void)call(cluster_.node(0), {0, 9999}, MsgType::kSubmit, {},
                          50ms),
               util::ProtocolError);
}

TEST_F(RpcTest, CallFromProcessIsKillable) {
  std::atomic<bool> threw{false};
  dac::Latch calling{1};
  auto p = cluster_.node(0).spawn({.name = "caller"}, [&](vnet::Process& proc) {
    try {
      // Target never replies; the kill must unblock the call whether it
      // lands while the call is blocked or just before it starts.
      calling.count_down();
      (void)call(proc, addr_, MsgType::kStatNodes, {}, 10'000ms);
    } catch (const util::StoppedError&) {
      threw = true;
    }
  });
  calling.wait();
  p->request_stop();
  p->join();
  EXPECT_TRUE(threw);
}

TEST_F(RpcTest, ConcurrentCallsDoNotCrosstalk) {
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      util::ByteWriter w;
      w.put<std::int32_t>(i);
      auto reply = call(cluster_.node(0), addr_, MsgType::kSubmit,
                        std::move(w).take());
      // Reversed 4-byte int: reverse again to recover.
      util::Bytes again(reply.rbegin(), reply.rend());
      util::ByteReader r(again);
      if (r.get<std::int32_t>() == i) ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok, 4);
}

TEST_F(RpcTest, ParseRequestExtractsFields) {
  // Round-trip through notify into a raw endpoint.
  auto ep = cluster_.node(0).open_endpoint();
  auto sink = cluster_.node(0).open_endpoint();
  notify(*ep, sink->address(), MsgType::kJobStarted,
         util::Bytes{std::byte{9}});
  auto msg = sink->recv_for(1000ms);
  ASSERT_TRUE(msg.has_value());
  auto req = parse_request(*msg);
  EXPECT_EQ(req.type, MsgType::kJobStarted);
  EXPECT_EQ(req.from, ep->address());
  EXPECT_EQ(req.body, util::Bytes{std::byte{9}});
  EXPECT_GT(req.id, 0u);
}

}  // namespace
}  // namespace dac::torque::rpc
