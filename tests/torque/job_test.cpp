// Serialization round trips for every wire structure of the batch system.
#include "torque/job.hpp"

#include <gtest/gtest.h>

#include "torque/launch_info.hpp"
#include "torque/node_db.hpp"
#include "torque/protocol.hpp"
#include "torque/server.hpp"

namespace dac::torque {
namespace {

JobSpec sample_spec() {
  JobSpec s;
  s.name = "myjob";
  s.owner = "alice";
  s.program = "prog";
  util::ByteWriter w;
  w.put<std::int32_t>(99);
  s.program_args = std::move(w).take();
  s.resources = {4, 8, 2, std::chrono::milliseconds(120'000)};
  s.priority = 3;
  return s;
}

TEST(JobSerialization, ResourceRequestRoundTrip) {
  ResourceRequest in{3, 16, 2, std::chrono::milliseconds(5000)};
  util::ByteWriter w;
  put_resource_request(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_resource_request(r);
  EXPECT_EQ(out.nodes, 3);
  EXPECT_EQ(out.ppn, 16);
  EXPECT_EQ(out.acpn, 2);
  EXPECT_EQ(out.walltime.count(), 5000);
  EXPECT_EQ(out.total_accelerators(), 6);
}

TEST(JobSerialization, JobSpecRoundTrip) {
  const auto in = sample_spec();
  util::ByteWriter w;
  put_job_spec(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_job_spec(r);
  EXPECT_EQ(out.name, "myjob");
  EXPECT_EQ(out.owner, "alice");
  EXPECT_EQ(out.program, "prog");
  EXPECT_EQ(out.program_args, in.program_args);
  EXPECT_EQ(out.resources.acpn, 2);
  EXPECT_EQ(out.priority, 3);
}

TEST(JobSerialization, JobInfoRoundTrip) {
  JobInfo in;
  in.id = 7;
  in.spec = sample_spec();
  in.state = JobState::kDynQueued;
  in.compute_hosts = {"cn0", "cn1"};
  in.accel_hosts = {"ac0"};
  in.dyn_accel_hosts = {"ac1", "ac2"};
  in.submit_time = 1.25;
  in.start_time = 2.5;
  in.end_time = -1.0;
  util::ByteWriter w;
  put_job_info(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_job_info(r);
  EXPECT_EQ(out.id, 7u);
  EXPECT_EQ(out.state, JobState::kDynQueued);
  EXPECT_EQ(out.compute_hosts, in.compute_hosts);
  EXPECT_EQ(out.dyn_accel_hosts, in.dyn_accel_hosts);
  EXPECT_DOUBLE_EQ(out.submit_time, 1.25);
  EXPECT_DOUBLE_EQ(out.end_time, -1.0);
}

TEST(JobSerialization, NodeStatusRoundTrip) {
  NodeStatus in;
  in.hostname = "ac3";
  in.node_id = 5;
  in.kind = NodeKind::kAccelerator;
  in.np = 1;
  in.used = 1;
  in.jobs = {11, 22};
  in.mom_addr = {5, 9};
  util::ByteWriter w;
  put_node_status(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_node_status(r);
  EXPECT_EQ(out.hostname, "ac3");
  EXPECT_EQ(out.kind, NodeKind::kAccelerator);
  EXPECT_EQ(out.jobs, in.jobs);
  EXPECT_EQ(out.mom_addr, in.mom_addr);
  EXPECT_EQ(out.free_slots(), 0);
}

TEST(JobSerialization, DynGetReplyRoundTrip) {
  DynGetReply in;
  in.granted = true;
  in.client_id = 42;
  in.hosts = {"ac0", "ac5"};
  in.host_nodes = {2, 7};
  in.queue_wait_seconds = 0.125;
  in.service_seconds = 0.5;
  util::ByteWriter w;
  put_dynget_reply(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_dynget_reply(r);
  EXPECT_TRUE(out.granted);
  EXPECT_EQ(out.client_id, 42u);
  EXPECT_EQ(out.hosts, in.hosts);
  EXPECT_EQ(out.host_nodes, in.host_nodes);
  EXPECT_DOUBLE_EQ(out.queue_wait_seconds, 0.125);
}

TEST(JobSerialization, HostRefsRoundTrip) {
  std::vector<HostRef> in{{"cn0", 1, {1, 2}}, {"ac0", 4, {4, 0}}};
  util::ByteWriter w;
  put_host_refs(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_host_refs(r);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].hostname, "cn0");
  EXPECT_EQ(out[1].node, 4);
  EXPECT_EQ(out[1].mom, (vnet::Address{4, 0}));
}

TEST(JobSerialization, QueueSnapshotRoundTrip) {
  QueueSnapshot in;
  in.now = 12.5;
  JobInfo j;
  j.id = 1;
  j.spec = sample_spec();
  in.jobs.push_back(j);
  in.dyn.push_back(
      DynQueueEntry{9, 1, 3, 2, NodeKind::kCompute, 4.5});
  util::ByteWriter w;
  put_queue_snapshot(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_queue_snapshot(r);
  EXPECT_DOUBLE_EQ(out.now, 12.5);
  ASSERT_EQ(out.jobs.size(), 1u);
  ASSERT_EQ(out.dyn.size(), 1u);
  EXPECT_EQ(out.dyn[0].dyn_id, 9u);
  EXPECT_EQ(out.dyn[0].count, 3);
  EXPECT_EQ(out.dyn[0].min_count, 2);
  EXPECT_EQ(out.dyn[0].kind, NodeKind::kCompute);
}

TEST(JobSerialization, LaunchInfoRoundTrip) {
  JobLaunchInfo in;
  in.job = 5;
  in.program = "app";
  in.nodes = 2;
  in.ppn = 4;
  in.acpn = 3;
  in.server = {0, 1};
  in.ms_mom = {1, 2};
  in.compute_hosts = {{"cn0", 1, {1, 0}}, {"cn1", 2, {2, 0}}};
  in.accel_hosts = {{"ac0", 3, {3, 0}}};
  util::ByteWriter w;
  put_launch_info(w, in);
  util::ByteReader r(w.bytes());
  const auto out = get_launch_info(r);
  EXPECT_EQ(out.job, 5u);
  EXPECT_EQ(out.program, "app");
  EXPECT_EQ(out.acpn, 3);
  EXPECT_EQ(out.server, (vnet::Address{0, 1}));
  ASSERT_EQ(out.compute_hosts.size(), 2u);
  EXPECT_EQ(out.compute_hosts[1].hostname, "cn1");
}

TEST(JobSerialization, StaticPortNames) {
  EXPECT_EQ(static_ac_port_name(12, 0), "acport-12-0");
  EXPECT_NE(static_ac_port_name(12, 0), static_ac_port_name(12, 1));
  EXPECT_NE(static_ac_port_name(12, 0), static_ac_port_name(13, 0));
}

TEST(JobSerialization, StateNames) {
  EXPECT_STREQ(job_state_name(JobState::kQueued), "Q");
  EXPECT_STREQ(job_state_name(JobState::kDynQueued), "DQ");
  EXPECT_STREQ(job_state_name(JobState::kComplete), "C");
}

}  // namespace
}  // namespace dac::torque
