// Tier-1 dynget storm: 64 simultaneous dynget callers (8 running jobs x 8
// IFL threads each) on the discrete-event clock. The smaller sibling of the
// 256-way storm in tests/maui/sched_stress_test.cpp, kept in tier-1 so the
// default CI gate — and every sanitizer leg — exercises concurrent dynamic
// servicing through the batched kDynDecide path on every run.
//
// Invariants: every caller is decided within the bound (no starvation, no
// hang), replaying the allocation events never oversubscribes a host, and
// the node table drains to zero used slots once the storm ends.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "harness/scenario.hpp"
#include "simtime/clock.hpp"
#include "torque/ifl.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace dac::torque {
namespace {

using namespace std::chrono_literals;

TEST(DynGetStorm, SixtyFourCallersDecideCleanly) {
  constexpr int kJobs = 8;
  constexpr int kCallersPerJob = 8;
  constexpr int kRounds = 2;

  std::atomic<bool> release{false};  // outlives the scenario
  testing::Scenario s;
  s.compute_nodes(1).accel_nodes(4);  // 8 CN slots, 4-slot AC pool
  s.clock_mode(simtime::Mode::kDiscreteEvent);
  s.program("hold", [&release](core::JobContext&) {
    (void)testing::await([&release] { return release.load(); }, 120'000ms);
  });
  auto& cluster = s.boot();

  std::vector<JobId> ids;
  for (int j = 0; j < kJobs; ++j) {
    ids.push_back(s.submit_program("hold", /*nodes=*/1, /*acpn=*/0));
  }
  {
    auto client = cluster.client();
    for (const auto id : ids) {
      const auto info = client.wait_for_state(id, JobState::kRunning, 60'000ms);
      ASSERT_TRUE(info.has_value() && info->state == JobState::kRunning)
          << "holder job " << id << " never started";
    }
  }

  constexpr int kCallers = kJobs * kCallersPerJob;
  std::vector<std::unique_ptr<Ifl>> clients;
  clients.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    clients.push_back(
        std::make_unique<Ifl>(cluster.head(), cluster.server_address()));
  }

  Mutex stats_mu{"test.dynstorm_stats"};
  int decided = 0;
  int granted = 0;
  util::Samples wait_s;
  {
    std::vector<simtime::ActorThread> threads;
    threads.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      Ifl* ifl = clients[static_cast<std::size_t>(c)].get();
      const auto job = ids[static_cast<std::size_t>(c % kJobs)];
      threads.emplace_back([&, ifl, job] {
        for (int r = 0; r < kRounds; ++r) {
          const auto t0 = simtime::now();
          const auto reply = ifl->dynget(job, /*count=*/1, /*min_count=*/1,
                                         NodeKind::kAccelerator, 60'000ms);
          const double waited = util::to_seconds(simtime::now() - t0);
          {
            ScopedLock lock(stats_mu);
            ++decided;
            wait_s.add(waited);
            if (reply.granted) ++granted;
          }
          if (reply.granted) ifl->dynfree(job, reply.client_id);
        }
      });
    }
  }  // joins every caller

  release.store(true);
  for (const auto id : ids) {
    ASSERT_TRUE(s.wait_job(id, 60'000ms).has_value());
  }
  for (const auto id : ids) ASSERT_NE(s.await_job_trace(id), 0u);

  EXPECT_EQ(decided, kCallers * kRounds);
  EXPECT_GT(granted, 0) << "a 4-slot pool must grant something";
  // Bounded p99 decision wait, in virtual seconds: 8 serialized requests
  // per job, each decided within a few 50 ms scheduler cycles.
  EXPECT_LT(wait_s.percentile(99.0), 20.0);

  const auto view = s.trace();
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));
  EXPECT_EQ(view.named("alloc.assign").size(),
            view.named("alloc.release").size());
  for (const auto& n : cluster.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname << " leaked slots";
  }
}

}  // namespace
}  // namespace dac::torque
