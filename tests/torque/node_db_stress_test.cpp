// Multi-threaded stress of the sharded NodeDb (tier-1, so the TSan and
// ASan CI legs run it on every change): seeded worker threads hammer
// assign/release/heartbeat/lookup while others take whole-DB snapshots and
// drain the dirty sets. Checks, while the storm runs, that every snapshot is
// a consistent cut (per-host slot bounds hold); at quiesce, that the sum of
// free slots across all shards equals the cluster total — nothing leaked,
// nothing double-freed — and that the dirty channel drained every change.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "torque/node_db.hpp"

namespace dac::torque {
namespace {

constexpr int kHosts = 24;
constexpr int kSlotsPerHost = 4;
constexpr int kWorkers = 8;
constexpr int kOpsPerWorker = 2'000;

std::string host_name(int i) { return "stress-cn" + std::to_string(i); }

TEST(NodeDbStress, ShardedConcurrentTrafficConserves) {
  NodeDb db(/*shards=*/4);  // fewer shards than workers: real contention
  for (int i = 0; i < kHosts; ++i) {
    NodeStatus n;
    n.hostname = host_name(i);
    n.kind = NodeKind::kCompute;
    n.np = kSlotsPerHost;
    db.upsert(n);
    (void)db.heartbeat(n.hostname, 0.0);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> snapshots_checked{0};

  // Snapshot reader: every whole-DB copy must be a consistent cut.
  std::thread reader([&] {
    std::mt19937 rng(0xC0FFEEu);
    while (!stop.load()) {
      const auto snap = db.snapshot();
      EXPECT_EQ(snap.size(), static_cast<std::size_t>(kHosts));
      for (const auto& n : snap) {
        EXPECT_GE(n.used, 0) << n.hostname;
        EXPECT_LE(n.used, n.np) << n.hostname;
        EXPECT_EQ(n.np, kSlotsPerHost) << n.hostname;
      }
      snapshots_checked.fetch_add(1);
      // Interleave per-shard iteration and dirty draining with the copies.
      if ((rng() % 2) != 0) {
        std::size_t seen = 0;
        db.for_each([&seen](const NodeStatus&) { ++seen; });
        EXPECT_EQ(seen, static_cast<std::size_t>(kHosts));
      } else {
        (void)db.drain_dirty();
      }
    }
  });

  // Workers: each owns a disjoint JobId range so a release never races a
  // *different* job's bookkeeping for the same id; hosts are shared and
  // contended freely.
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&db, w] {
      std::mt19937 rng(0x5EED'0000u + static_cast<std::uint32_t>(w));
      std::vector<std::pair<std::string, JobId>> held;
      for (int op = 0; op < kOpsPerWorker; ++op) {
        const auto host = host_name(static_cast<int>(rng() % kHosts));
        const JobId job = 1'000u * static_cast<JobId>(w + 1) + rng() % 8;
        switch (rng() % 6) {
          case 0:
          case 1:
            if (db.assign(host, job, 1)) held.emplace_back(host, job);
            break;
          case 2:
            if (!held.empty()) {
              const auto [h, j] = held.back();
              held.pop_back();
              db.release(h, j);
            }
            break;
          case 3:
            (void)db.heartbeat(host, static_cast<double>(op));
            break;
          case 4:
            if (const auto st = db.lookup(host)) {
              EXPECT_GE(st->used, 0);
              EXPECT_LE(st->used, st->np);
            }
            break;
          case 5:
            (void)db.mom_of(host);
            break;
        }
      }
      // Quiesce this worker: return everything it still holds. release()
      // frees all slots a job holds on the host, so drop duplicates cheaply
      // by releasing every (host, job) pair we recorded.
      for (const auto& [h, j] : held) db.release(h, j);
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_GT(snapshots_checked.load(), 0);

  // Quiesce: the sum of free slots across every shard must equal the
  // cluster total — conservation across all the concurrent traffic.
  int total_free = 0;
  int total_used = 0;
  for (const auto& n : db.snapshot()) {
    total_free += n.free_slots();
    total_used += n.used;
    EXPECT_TRUE(n.jobs.empty()) << n.hostname << " still lists holders";
  }
  EXPECT_EQ(total_used, 0);
  EXPECT_EQ(total_free, kHosts * kSlotsPerHost);

  // The dirty channel reports each host at most once and clears on drain.
  const auto dirty = db.drain_dirty();
  EXPECT_TRUE(std::is_sorted(dirty.begin(), dirty.end()));
  EXPECT_TRUE(db.drain_dirty().empty());
}

}  // namespace
}  // namespace dac::torque
