#include "torque/node_db.hpp"

#include <gtest/gtest.h>

namespace dac::torque {
namespace {

NodeStatus make_node(const std::string& name, NodeKind kind, int np) {
  NodeStatus n;
  n.hostname = name;
  n.node_id = 1;
  n.kind = kind;
  n.np = np;
  n.mom_addr = {1, 0};
  return n;
}

TEST(NodeDb, UpsertAndLookup) {
  NodeDb db;
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  ASSERT_TRUE(db.lookup("cn0").has_value());
  EXPECT_EQ(db.lookup("cn0")->np, 8);
  EXPECT_FALSE(db.lookup("ghost").has_value());
  EXPECT_EQ(db.size(), 1u);
}

TEST(NodeDb, UpsertRefreshKeepsAssignments) {
  NodeDb db;
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  ASSERT_TRUE(db.assign("cn0", 1, 4));
  auto refreshed = make_node("cn0", NodeKind::kCompute, 16);
  db.upsert(refreshed);
  EXPECT_EQ(db.lookup("cn0")->np, 16);
  EXPECT_EQ(db.lookup("cn0")->used, 4);  // assignment survived
}

TEST(NodeDb, AssignRespectsCapacity) {
  NodeDb db;
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  EXPECT_TRUE(db.assign("cn0", 1, 6));
  EXPECT_FALSE(db.assign("cn0", 2, 4));  // only 2 free
  EXPECT_TRUE(db.assign("cn0", 2, 2));
  EXPECT_EQ(db.lookup("cn0")->free_slots(), 0);
}

TEST(NodeDb, AssignUnknownHostFails) {
  NodeDb db;
  EXPECT_FALSE(db.assign("ghost", 1, 1));
}

TEST(NodeDb, ReleasePerHost) {
  NodeDb db;
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  ASSERT_TRUE(db.assign("cn0", 1, 3));
  ASSERT_TRUE(db.assign("cn0", 2, 2));
  db.release("cn0", 1);
  EXPECT_EQ(db.lookup("cn0")->used, 2);
  EXPECT_EQ(db.lookup("cn0")->jobs, (std::vector<JobId>{2}));
  db.release("cn0", 99);  // unknown job: no-op
  EXPECT_EQ(db.lookup("cn0")->used, 2);
}

TEST(NodeDb, ReleaseAllAcrossHosts) {
  NodeDb db;
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  db.upsert(make_node("ac0", NodeKind::kAccelerator, 1));
  ASSERT_TRUE(db.assign("cn0", 1, 2));
  ASSERT_TRUE(db.assign("ac0", 1, 1));
  db.release_all(1);
  EXPECT_EQ(db.lookup("cn0")->used, 0);
  EXPECT_EQ(db.lookup("ac0")->used, 0);
}

TEST(NodeDb, MultipleAssignmentsSameJobAccumulate) {
  NodeDb db;
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  ASSERT_TRUE(db.assign("cn0", 1, 2));
  ASSERT_TRUE(db.assign("cn0", 1, 2));
  EXPECT_EQ(db.lookup("cn0")->used, 4);
  EXPECT_EQ(db.lookup("cn0")->jobs.size(), 1u);  // listed once
  db.release("cn0", 1);
  EXPECT_EQ(db.lookup("cn0")->used, 0);
}

TEST(NodeDb, AcceleratorExclusivity) {
  NodeDb db;
  db.upsert(make_node("ac0", NodeKind::kAccelerator, 1));
  EXPECT_TRUE(db.assign("ac0", 1, 1));
  EXPECT_FALSE(db.assign("ac0", 2, 1));
}

TEST(NodeDb, MomOf) {
  NodeDb db;
  auto n = make_node("cn0", NodeKind::kCompute, 8);
  n.mom_addr = {3, 14};
  db.upsert(n);
  ASSERT_TRUE(db.mom_of("cn0").has_value());
  EXPECT_EQ(*db.mom_of("cn0"), (vnet::Address{3, 14}));
  EXPECT_FALSE(db.mom_of("ghost").has_value());
}

TEST(NodeDb, SnapshotIsCopy) {
  NodeDb db;
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  auto snap = db.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  snap[0].used = 99;
  EXPECT_EQ(db.lookup("cn0")->used, 0);
}

TEST(NodeDb, SnapshotSortedAcrossShards) {
  NodeDb db(4);
  for (int i = 15; i >= 0; --i) {
    db.upsert(make_node("cn" + std::to_string(i), NodeKind::kCompute, 8));
  }
  const auto snap = db.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].hostname, snap[i].hostname);
  }
}

TEST(NodeDb, DirtyTracksSchedulerVisibleChanges) {
  NodeDb db(4);
  db.upsert(make_node("cn0", NodeKind::kCompute, 8));
  db.upsert(make_node("ac0", NodeKind::kAccelerator, 1));
  EXPECT_EQ(db.drain_dirty(), (std::vector<std::string>{"ac0", "cn0"}));
  EXPECT_TRUE(db.drain_dirty().empty());  // drained

  ASSERT_TRUE(db.assign("ac0", 1, 1));
  EXPECT_EQ(db.drain_dirty(), (std::vector<std::string>{"ac0"}));

  db.release("ac0", 1);
  db.release("ac0", 1);  // second release is a no-op: not re-dirtied
  EXPECT_EQ(db.drain_dirty(), (std::vector<std::string>{"ac0"}));

  // Heartbeats only dirty a node when they revive it.
  db.heartbeat("cn0", 1.0);
  EXPECT_TRUE(db.drain_dirty().empty());
}

TEST(NodeDb, ForEachVisitsEveryNode) {
  NodeDb db(3);
  for (int i = 0; i < 7; ++i) {
    db.upsert(make_node("n" + std::to_string(i), NodeKind::kCompute, 4));
  }
  int count = 0;
  db.for_each([&](const NodeStatus&) { ++count; });
  EXPECT_EQ(count, 7);
}

}  // namespace
}  // namespace dac::torque
