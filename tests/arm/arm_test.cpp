#include "arm/arm.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "vnet/cluster.hpp"

namespace dac::arm {
namespace {

class ArmTest : public ::testing::Test {
 protected:
  ArmTest() : cluster_([] {
    vnet::ClusterTopology t;
    t.node_count = 6;
    t.network.latency = std::chrono::microseconds(50);
    t.process_start_delay = std::chrono::microseconds(0);
    return t;
  }()) {
    std::vector<PrototypeArm::PoolEntry> pool;
    for (vnet::NodeId id = 2; id <= 5; ++id) {
      pool.push_back({id, "ac" + std::to_string(id - 2)});
    }
    arm_ = std::make_unique<PrototypeArm>(cluster_.node(0), std::move(pool));
    proc_ = cluster_.node(0).spawn(
        {.name = "arm"}, [this](vnet::Process& p) { arm_->run(p); });
  }

  ArmClient client() { return ArmClient(cluster_.node(1), arm_->address()); }

  vnet::Cluster cluster_;
  std::unique_ptr<PrototypeArm> arm_;
  vnet::ProcessPtr proc_;
};

TEST_F(ArmTest, StatusReportsPool) {
  auto s = client().status();
  EXPECT_EQ(s.total, 4);
  EXPECT_EQ(s.free, 4);
  EXPECT_EQ(s.sets_outstanding, 0);
}

TEST_F(ArmTest, AllocGrantsDistinctNodes) {
  auto c = client();
  auto a = c.alloc(3);
  ASSERT_TRUE(a.granted);
  EXPECT_EQ(a.nodes.size(), 3u);
  EXPECT_EQ(a.hostnames.size(), 3u);
  std::sort(a.nodes.begin(), a.nodes.end());
  EXPECT_EQ(std::unique(a.nodes.begin(), a.nodes.end()), a.nodes.end());
  EXPECT_EQ(c.status().free, 1);
  c.free_set(a.set_id);
}

TEST_F(ArmTest, RejectsWhenInsufficient) {
  auto c = client();
  auto a = c.alloc(3);
  ASSERT_TRUE(a.granted);
  auto b = c.alloc(2);  // only 1 free
  EXPECT_FALSE(b.granted);
  EXPECT_EQ(c.status().free, 1);  // rejection allocates nothing
  c.free_set(a.set_id);
}

TEST_F(ArmTest, RejectsNonPositiveCount) {
  auto c = client();
  EXPECT_FALSE(c.alloc(0).granted);
  EXPECT_FALSE(c.alloc(-1).granted);
}

TEST_F(ArmTest, FreeRestoresPool) {
  auto c = client();
  auto a = c.alloc(2);
  auto b = c.alloc(2);
  ASSERT_TRUE(a.granted && b.granted);
  EXPECT_EQ(c.status().free, 0);
  c.free_set(a.set_id);
  EXPECT_EQ(c.status().free, 2);
  c.free_set(b.set_id);
  EXPECT_EQ(c.status().free, 4);
  EXPECT_EQ(c.status().sets_outstanding, 0);
}

TEST_F(ArmTest, FreeUnknownSetThrows) {
  auto c = client();
  EXPECT_THROW(c.free_set(777), util::ProtocolError);
}

TEST_F(ArmTest, SetsFreeInAnyOrder) {
  // Unlike the MPI-layer LIFO constraint of AcSession, the raw ARM pool has
  // no ordering requirement.
  auto c = client();
  auto a = c.alloc(1);
  auto b = c.alloc(1);
  auto d = c.alloc(1);
  c.free_set(b.set_id);
  c.free_set(a.set_id);
  c.free_set(d.set_id);
  EXPECT_EQ(c.status().free, 4);
}

TEST_F(ArmTest, ReuseAfterFree) {
  auto c = client();
  auto a = c.alloc(4);
  ASSERT_TRUE(a.granted);
  c.free_set(a.set_id);
  auto b = c.alloc(4);
  EXPECT_TRUE(b.granted);
  c.free_set(b.set_id);
}

}  // namespace
}  // namespace dac::arm
