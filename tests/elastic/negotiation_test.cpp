// End-to-end tests of the elastic negotiation (src/elastic): the three-phase
// offer -> ack/nack -> reconfigure protocol between the Maui utilization
// policies, the pbs_server broker, and the job-side ElasticAgent. The core
// acceptance scenario — a scheduler-initiated shrink re-granting capacity to
// a queued dynget — plus the fallback paths (nack, offer timeout) that must
// revert reservations with no slot leak.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "elastic/agent.hpp"
#include "elastic/policy.hpp"
#include "harness/scenario.hpp"
#include "simtime/clock.hpp"
#include "svc/deadlines.hpp"
#include "svc/service_loop.hpp"

namespace dac::elastic {
namespace {

using namespace std::chrono_literals;

int used_slots(core::DacCluster& cluster) {
  int used = 0;
  for (const auto& n : cluster.client().stat_nodes()) used += n.used;
  return used;
}

// Polls an atomic flag from the (sim-actor) test thread.
void await_flag(const std::atomic<bool>& flag,
                std::chrono::milliseconds timeout = 30'000ms) {
  ASSERT_TRUE(testing::await([&] { return flag.load(); }, timeout, 2ms))
      << "flag never raised within the window";
}

// A registered-but-unhelpful elastic participant: announces capabilities via
// kElastRegister like a real ElasticAgent, then either nacks every offer or
// ignores them entirely — the two fallback paths the broker must absorb
// without leaking the reservation.
class StubAgent {
 public:
  enum class Mode { kNackAll, kDeaf };

  StubAgent(vnet::Process& proc, torque::JobId job, vnet::Address server,
            Mode mode)
      : proc_(proc), job_(job), server_(server), mode_(mode),
        ep_(proc.open_endpoint()) {
    if (mode_ == Mode::kNackAll) {
      svc::ServiceConfig cfg;
      cfg.name = "elastic-stub";
      loop_ = std::make_unique<svc::ServiceLoop>(*ep_, cfg);
      auto& loop = *loop_;
      using torque::MsgType;
      loop.on(MsgType::kElastOffer, svc::ExecClass::kMutating,
              [this](const svc::Request& req, svc::Responder&) {
                util::ByteReader r(req.body);
                const Offer offer = get_offer(r);
                Ack ack;
                ack.offer_id = offer.offer_id;
                ack.job = job_;
                ack.accept = false;
                util::ByteWriter w;
                put_ack(w, ack);
                const svc::Caller caller(proc_, server_, {});
                (void)caller.call(MsgType::kElastAck, std::move(w).take(),
                                  {.deadline = svc::deadlines::kElasticAck});
                ++nacks_;
              });
      loop.on(MsgType::kElastReconfig, svc::ExecClass::kMutating,
              [](const svc::Request&, svc::Responder&) {});
      thread_.emplace([this] { loop_->run(); });
    }
  }

  ~StubAgent() {
    ep_->close();
    if (thread_) thread_->join();
  }

  void announce(bool can_grow, bool can_shrink, std::int32_t appetite) {
    Registration reg;
    reg.job = job_;
    reg.agent = ep_->address();
    reg.can_grow = can_grow;
    reg.can_shrink = can_shrink;
    reg.appetite = appetite;
    util::ByteWriter w;
    put_registration(w, reg);
    const svc::Caller caller(proc_, server_, {});
    (void)caller.call(torque::MsgType::kElastRegister, std::move(w).take(),
                      {.deadline = svc::deadlines::kControl});
  }

  [[nodiscard]] int nacks() const { return nacks_.load(); }

 private:
  vnet::Process& proc_;
  torque::JobId job_;
  vnet::Address server_;
  Mode mode_;
  std::unique_ptr<vnet::Endpoint> ep_;
  std::unique_ptr<svc::ServiceLoop> loop_;
  std::atomic<int> nacks_{0};
  std::optional<simtime::ActorThread> thread_;
};

// The acceptance scenario of the subsystem: a hog job holds both
// accelerators; a second job's dynget queues; the ShrinkUnderPressure policy
// negotiates the hog's newest set back and the starved request is granted
// from the reclaimed capacity — with slot accounting conserved throughout.
TEST(ElasticNegotiation, ShrinkRegrantsStarvedDynget) {
  std::atomic<bool> hog_ready{false};
  std::atomic<bool> done{false};
  std::atomic<int> hog_final_acs{-1};
  std::atomic<bool> requester_granted{false};

  testing::Scenario s;
  s.compute_nodes(2).accel_nodes(2);
  s.config().elastic_policy = std::make_shared<ShrinkUnderPressurePolicy>(
      ShrinkUnderPressurePolicy::Config{.queue_threshold = 1,
                                        .min_wait_s = 0.0});

  s.program("hog", [&](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    auto first = ses.ac_get(1);
    ASSERT_TRUE(first.granted);
    auto second = ses.ac_get(1);
    ASSERT_TRUE(second.granted);

    auto cfg = ctx.elastic_config();
    cfg.accept_shrink = true;
    ElasticAgent agent(ctx.mpi().process(), cfg);
    agent.on_shrink([&](const Reconfig& r) { ses.ac_detach(r.client_id); });
    agent.announce();
    hog_ready = true;

    while (!done.load()) (void)agent.service(5ms);
    // Grace drain: a reconfigure committed just before `done` must still be
    // applied before the session is torn down.
    const auto grace = simtime::now() + 200ms;
    while (simtime::now() < grace) (void)agent.service(5ms);
    agent.stop();

    hog_final_acs = ses.accelerator_count();
    // The newest set went back to the scheduler; the first is still ours.
    ses.ac_free(first.client_id);
    ses.ac_finalize();
  });

  s.program("requester", [&](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    auto got = ses.ac_get(1);
    requester_granted = got.granted;
    if (got.granted) {
      const auto p = ses.ac_mem_alloc(got.handles[0], 64);
      ses.ac_mem_free(got.handles[0], p);
      ses.ac_free(got.client_id);
    }
    ses.ac_finalize();
  });

  const auto hog_id = s.submit_program("hog", /*nodes=*/1, /*acpn=*/0);
  await_flag(hog_ready);
  const auto req_id = s.submit_program("requester", /*nodes=*/1, /*acpn=*/0);
  ASSERT_TRUE(s.wait_job(req_id, 30'000ms).has_value());
  done = true;
  ASSERT_TRUE(s.wait_job(hog_id, 30'000ms).has_value());

  EXPECT_TRUE(requester_granted.load())
      << "the starved dynget was never re-granted from the shrink";
  EXPECT_EQ(hog_final_acs.load(), 1) << "hog should have lost its newest set";
  EXPECT_GE(s.cluster().scheduler_stats().elast_proposed, 1u);
  EXPECT_EQ(used_slots(s.cluster()), 0);

  // The negotiation joins the starved requester's trace: one causal tree
  // from its dynget through the proposal to the reconfigure.
  ASSERT_NE(s.await_job_trace(req_id), 0u);
  auto view = s.trace();
  const auto req_trace = view.trace_of_job(req_id);
  ASSERT_NE(req_trace, 0u);
  bool propose_in_req_trace = false;
  for (const auto* span : view.named("maui.propose_shrink")) {
    propose_in_req_trace |= span->trace == req_trace;
  }
  EXPECT_TRUE(propose_in_req_trace)
      << "the shrink proposal did not join the requester's trace";
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));
  EXPECT_EQ(view.named("alloc.assign").size(),
            view.named("alloc.release").size());
}

// Idle-expansion: a job with appetite is grown unprompted while the pool
// idles; the application attaches the granted set with ac_attach and later
// releases it through the ordinary ac_free path.
TEST(ElasticNegotiation, GrowOfferAttachesAndFreesCleanly) {
  std::atomic<bool> grew{false};

  testing::Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.config().elastic_policy = std::make_shared<ExpandIdlePolicy>();

  s.program("eager", [&](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();

    auto cfg = ctx.elastic_config();
    cfg.accept_grow = true;
    cfg.appetite = 1;
    ElasticAgent agent(ctx.mpi().process(), cfg);
    std::uint64_t granted_client = 0;
    agent.on_grow([&](const Reconfig& r) {
      auto handles = ses.ac_attach(
          r.client_id, std::vector<vnet::NodeId>(r.nodes.begin(),
                                                 r.nodes.end()));
      ASSERT_EQ(handles.size(), r.hosts.size());
      const auto p = ses.ac_mem_alloc(handles.front(), 128);
      ses.ac_mem_free(handles.front(), p);
      granted_client = r.client_id;
    });
    agent.announce();

    const auto deadline = simtime::now() + 20'000ms;
    while (granted_client == 0 && simtime::now() < deadline) {
      (void)agent.service(10ms);
    }
    agent.stop();
    ASSERT_NE(granted_client, 0u) << "grow offer never arrived";
    grew = ses.accelerator_count() == 1;
    ses.ac_free(granted_client);
    ses.ac_finalize();
  });

  const auto id = s.submit_program("eager", /*nodes=*/1, /*acpn=*/0);
  ASSERT_TRUE(s.wait_job(id, 30'000ms).has_value());
  EXPECT_TRUE(grew.load());
  EXPECT_GE(s.cluster().scheduler_stats().elast_proposed, 1u);
  EXPECT_EQ(used_slots(s.cluster()), 0);
}

// Nack fallback: the job declines a grow offer; the reservation made at
// propose time must be released — afterwards the same job can take the whole
// pool through a plain dynget.
TEST(ElasticNegotiation, NackReleasesGrowReservation) {
  std::atomic<bool> pool_intact{false};

  testing::Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.config().elastic_policy = std::make_shared<ExpandIdlePolicy>();

  s.program("refuser", [&](core::JobContext& ctx) {
    StubAgent stub(ctx.mpi().process(), ctx.job_id(),
                   ctx.elastic_config().server, StubAgent::Mode::kNackAll);
    stub.announce(/*can_grow=*/true, /*can_shrink=*/false, /*appetite=*/2);
    ASSERT_TRUE(testing::await([&] { return stub.nacks() >= 1; }, 20'000ms))
        << "no offer reached the stub";

    // The nack must have reverted the reservation: a dynget for the whole
    // pool succeeds once the release has landed.
    auto& ses = ctx.session();
    (void)ses.ac_init();
    (void)testing::await(
        [&] {
          auto got = ses.ac_get(2);
          if (!got.granted) return false;
          pool_intact = true;
          ses.ac_free(got.client_id);
          return true;
        },
        20'000ms, 10ms);
    ses.ac_finalize();
  });

  const auto id = s.submit_program("refuser", /*nodes=*/1, /*acpn=*/0);
  ASSERT_TRUE(s.wait_job(id, 60'000ms).has_value());
  EXPECT_TRUE(pool_intact.load()) << "grow reservation leaked after nack";
  EXPECT_EQ(used_slots(s.cluster()), 0);
}

// Timeout fallback: a registered job that never answers offers. The broker
// expires the offer on the liveness sweep, releases the reservation, and
// clears the capability so the deaf job is not offered again.
TEST(ElasticNegotiation, OfferTimeoutReleasesGrowReservation) {
  std::atomic<bool> pool_intact{false};

  testing::Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.config().elastic_policy = std::make_shared<ExpandIdlePolicy>();
  s.config().timing.elastic_offer_timeout = 100ms;

  s.program("deaf", [&](core::JobContext& ctx) {
    StubAgent stub(ctx.mpi().process(), ctx.job_id(),
                   ctx.elastic_config().server, StubAgent::Mode::kDeaf);
    stub.announce(/*can_grow=*/true, /*can_shrink=*/false, /*appetite=*/2);
    // Let a proposal actually reserve the pool before contending for it —
    // otherwise the dynget below could win the race and prove nothing.
    ASSERT_TRUE(testing::await(
        [&] { return s.cluster().scheduler_stats().elast_proposed >= 1; },
        20'000ms));
    auto& ses = ctx.session();
    (void)ses.ac_init();
    (void)testing::await(
        [&] {
          auto got = ses.ac_get(2);
          if (!got.granted) return false;
          pool_intact = true;
          ses.ac_free(got.client_id);
          return true;
        },
        20'000ms, 20ms);
    ses.ac_finalize();
  });

  const auto id = s.submit_program("deaf", /*nodes=*/1, /*acpn=*/0);
  ASSERT_TRUE(s.wait_job(id, 60'000ms).has_value());
  EXPECT_TRUE(pool_intact.load()) << "grow reservation leaked after timeout";
  EXPECT_EQ(used_slots(s.cluster()), 0);
}

}  // namespace
}  // namespace dac::elastic
