// Fault-path test of the elastic broker: a reserved accelerator node dies
// while a grow negotiation is in flight (mid-reconfigure, before the ack
// lands). The node-down reclaim must cancel the offer and revert the whole
// reservation — including reserved hosts that did NOT die — so no slot
// leaks. Runs under the seeded fault plan 0xA11CE so message-delay
// injection shakes the negotiation's timing as well.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "elastic/agent.hpp"
#include "elastic/policy.hpp"
#include "faults/fault_plan.hpp"
#include "harness/scenario.hpp"
#include "simtime/clock.hpp"
#include "svc/deadlines.hpp"

namespace dac::elastic {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kFaultSeed = 0xA11CE;

TEST(ElasticFaultRevert, NodeDeathMidNegotiationRevertsReservation) {
  std::atomic<bool> registered{false};
  std::atomic<bool> crash_done{false};
  std::atomic<bool> pool_recovered{false};
  std::atomic<bool> job_done{false};

  testing::Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.fault_plan(std::make_shared<faults::FaultPlan>(kFaultSeed));
  s.config().elastic_policy = std::make_shared<ExpandIdlePolicy>();
  // Keep the offer pending long enough for the node to die first: the
  // revert under test is the crash path, not the timeout sweep.
  s.config().timing.elastic_offer_timeout = 30'000ms;

  s.program("victim", [&](core::JobContext& ctx) {
    // Register grow appetite for the whole pool but never answer offers:
    // the reservation stays pending until the crash cancels it.
    auto ep = ctx.mpi().process().open_endpoint();
    Registration reg;
    reg.job = ctx.job_id();
    reg.agent = ep->address();
    reg.can_grow = true;
    reg.appetite = 2;
    util::ByteWriter w;
    put_registration(w, reg);
    const svc::Caller caller(ctx.mpi().process(),
                             ctx.elastic_config().server, {});
    (void)caller.call(torque::MsgType::kElastRegister, std::move(w).take(),
                      {.deadline = svc::deadlines::kControl});
    registered = true;

    // Stay idle until the driver has crashed and recovered the reserved
    // node — polling dyngets before that would race the proposal and could
    // grab the pool before the offer reserves it.
    while (!crash_done.load()) {
      core::interruptible_sleep(ctx, 5ms);
    }

    // Prove both accelerators came back: a dynget for the full pool only
    // succeeds if the cancelled offer released every reserved host, dead
    // and alive alike.
    auto& ses = ctx.session();
    (void)ses.ac_init();
    (void)testing::await(
        [&] {
          auto got = ses.ac_get(2);
          if (!got.granted) return false;
          pool_recovered = true;
          ses.ac_free(got.client_id);
          return true;
        },
        40'000ms, 25ms);
    ses.ac_finalize();
    job_done = true;
  });

  const auto id = s.submit_program("victim", /*nodes=*/1, /*acpn=*/0);

  // Wait until the registration landed and a grow proposal reserved the
  // pool, then kill one of the reserved accelerator nodes.
  ASSERT_TRUE(testing::await(
      [&] {
        return registered.load() &&
               s.cluster().scheduler_stats().elast_proposed >= 1;
      },
      20'000ms));

  // Cluster layout: head = 0, compute nodes 1..C, accelerators after. With
  // 1 CN the first accelerator is cluster index 2.
  s.fail_node(2);
  // The server suspects, then downs the node and reclaims — cancelling the
  // pending offer on the way. Wait for the down-detection before recovery
  // so the reclaim (and with it the offer cancellation) actually runs.
  std::string accel_host;
  for (const auto& n : s.cluster().client().stat_nodes()) {
    if (n.kind == torque::NodeKind::kAccelerator) {
      accel_host = n.hostname;
      break;
    }
  }
  ASSERT_FALSE(accel_host.empty());
  ASSERT_TRUE(s.cluster().await_node_liveness(
      accel_host, torque::Liveness::kDown, 20'000ms));
  s.recover_node(2);
  ASSERT_TRUE(s.cluster().await_node_liveness(
      accel_host, torque::Liveness::kUp, 20'000ms));
  crash_done = true;

  ASSERT_TRUE(s.wait_job(id, 60'000ms).has_value());
  EXPECT_TRUE(job_done.load());
  EXPECT_TRUE(pool_recovered.load())
      << "reservation leaked: the full pool never became grantable again";

  int used = 0;
  for (const auto& n : s.cluster().client().stat_nodes()) used += n.used;
  EXPECT_EQ(used, 0);

  auto view = s.trace();
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));
}

}  // namespace
}  // namespace dac::elastic
