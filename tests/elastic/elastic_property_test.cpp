// Property-based elastic-negotiation test: a seeded random mix of hog jobs
// (shrinkable, holding dynamic sets), plain dynget requesters, and deaf
// grow registrants (whose offers always time out) runs against the Balanced
// utilization policy. Whatever storm of offer/ack/nack/timeout the mix
// produces, the allocation invariants of the scheduler property test must
// still hold:
//   1. no slot double-grant (TraceView::no_allocation_overlap);
//   2. every assignment matched by a release, node table drained to zero;
//   3. every job of the stream completes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <vector>

#include "elastic/agent.hpp"
#include "elastic/policy.hpp"
#include "harness/scenario.hpp"
#include "simtime/clock.hpp"
#include "svc/deadlines.hpp"

namespace dac::elastic {
namespace {

using namespace std::chrono_literals;

void run_storm(std::uint32_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed=0x" << std::hex << seed);
  std::mt19937 rng(seed);  // explicit seed: the storm must be replayable
  std::uniform_int_distribution<int> sets_dist(1, 2);
  std::uniform_int_distribution<int> rounds_dist(1, 2);
  std::uniform_int_distribution<int> want_dist(1, 2);

  std::atomic<bool> done{false};

  testing::Scenario s;
  s.compute_nodes(2).accel_nodes(4);
  s.config().elastic_policy = std::make_shared<BalancedPolicy>(
      ShrinkUnderPressurePolicy::Config{.queue_threshold = 1,
                                        .min_wait_s = 0.0},
      ExpandIdlePolicy::Config{.max_offers_per_cycle = 1});
  s.config().timing.elastic_offer_timeout = 150ms;

  // Hog: grabs dynamic sets, registers shrinkable, and keeps servicing
  // until the driver says the storm is over; whatever the negotiation left
  // it holding is released LIFO at the end.
  s.program("hog", [&](core::JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto sets = r.get<std::int32_t>();
    auto& ses = ctx.session();
    (void)ses.ac_init();
    std::vector<std::uint64_t> held;
    for (std::int32_t i = 0; i < sets; ++i) {
      auto got = ses.ac_get(1);
      if (got.granted) held.push_back(got.client_id);
    }
    auto cfg = ctx.elastic_config();
    cfg.accept_shrink = true;
    ElasticAgent agent(ctx.mpi().process(), cfg);
    agent.on_shrink([&](const Reconfig& rc) {
      ASSERT_FALSE(held.empty());
      ASSERT_EQ(held.back(), rc.client_id) << "shrink must reclaim LIFO";
      ses.ac_detach(rc.client_id);
      held.pop_back();
    });
    agent.announce();
    while (!done.load()) (void)agent.service(5ms);
    // Grace drain: apply any reconfigure committed just before `done`.
    const auto grace = simtime::now() + 200ms;
    while (simtime::now() < grace) (void)agent.service(5ms);
    agent.stop();
    while (!held.empty()) {
      ses.ac_free(held.back());
      held.pop_back();
    }
    ses.ac_finalize();
  });

  // Requester: rounds of plain dyngets; rejection is a normal outcome.
  s.program("requester", [&](core::JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto rounds = r.get<std::int32_t>();
    const auto want = r.get<std::int32_t>();
    auto& ses = ctx.session();
    (void)ses.ac_init();
    for (std::int32_t i = 0; i < rounds; ++i) {
      auto got = ses.ac_get(want, /*min_count=*/1);
      if (got.granted) ses.ac_free(got.client_id);
    }
    ses.ac_finalize();
  });

  // Deaf registrant: advertises grow appetite and never answers the offer —
  // a guaranteed reservation-timeout in the storm.
  s.program("deaf", [&](core::JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto appetite = r.get<std::int32_t>();
    auto ep = ctx.mpi().process().open_endpoint();
    Registration reg;
    reg.job = ctx.job_id();
    reg.agent = ep->address();
    reg.can_grow = true;
    reg.appetite = appetite;
    util::ByteWriter w;
    put_registration(w, reg);
    const svc::Caller caller(ctx.mpi().process(),
                             ctx.elastic_config().server, {});
    (void)caller.call(torque::MsgType::kElastRegister, std::move(w).take(),
                      {.deadline = svc::deadlines::kControl});
    // Stay alive across at least one offer-timeout window.
    core::interruptible_sleep(ctx, 250ms);
  });

  // Two hogs anchor the shrinkable capacity; the rest of the stream is a
  // seeded mix of requesters and deaf registrants.
  std::vector<torque::JobId> hogs;
  std::vector<torque::JobId> transients;
  for (int i = 0; i < 2; ++i) {
    util::ByteWriter w;
    w.put<std::int32_t>(sets_dist(rng));
    hogs.push_back(
        s.submit_program("hog", /*nodes=*/1, /*acpn=*/0, std::move(w).take()));
  }
  for (int i = 0; i < 4; ++i) {
    if (rng() % 3 == 0) {
      util::ByteWriter w;
      w.put<std::int32_t>(want_dist(rng));
      transients.push_back(s.submit_program("deaf", /*nodes=*/1, /*acpn=*/0,
                                            std::move(w).take()));
    } else {
      util::ByteWriter w;
      w.put<std::int32_t>(rounds_dist(rng));
      w.put<std::int32_t>(want_dist(rng));
      transients.push_back(s.submit_program("requester", /*nodes=*/1,
                                            /*acpn=*/0, std::move(w).take()));
    }
  }

  // Property 3: everything completes. Transients first, then the hogs are
  // told the storm is over.
  for (const auto id : transients) {
    EXPECT_TRUE(s.wait_job(id, 60'000ms).has_value())
        << "transient job " << id << " never finished";
  }
  done = true;
  for (const auto id : hogs) {
    EXPECT_TRUE(s.wait_job(id, 60'000ms).has_value())
        << "hog job " << id << " never finished";
  }
  for (const auto id : transients) ASSERT_NE(s.await_job_trace(id), 0u);
  for (const auto id : hogs) ASSERT_NE(s.await_job_trace(id), 0u);

  // Property 1: no double-grant anywhere — elastic reservations and grants
  // obey the same per-host capacity as everything else.
  auto view = s.trace();
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));

  // Property 2: conservation across the whole storm.
  EXPECT_FALSE(view.named("alloc.assign").empty());
  EXPECT_EQ(view.named("alloc.assign").size(),
            view.named("alloc.release").size());
  for (const auto& n : s.cluster().client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname << " leaked slots";
  }
}

TEST(ElasticProperty, OfferStormSeedA) { run_storm(0xE1A5'0001u); }

TEST(ElasticProperty, OfferStormSeedB) { run_storm(0xE1A5'0002u); }

}  // namespace
}  // namespace dac::elastic
