// AcSession (the resource-management library) semantics: the paper's rank
// numbering, set-wise release rules, rejection handling, collective calls,
// and error paths — exercised through the full batch system.
#include "rmlib/ac_session.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "core/cluster.hpp"
#include "util/error.hpp"

namespace dac::rmlib {
namespace {

using namespace std::chrono_literals;

class AcSessionTest : public ::testing::Test {
 protected:
  AcSessionTest() : cluster_([] {
    auto c = core::DacClusterConfig::fast();
    c.compute_nodes = 2;
    c.accel_nodes = 5;
    return c;
  }()) {}

  // Runs `body` inside a single-CN job with `acpn` static accelerators and
  // waits for completion.
  void run_job(int acpn, std::function<void(core::JobContext&)> body,
               int nodes = 1) {
    static std::atomic<int> counter{0};
    const auto name = "t" + std::to_string(counter.fetch_add(1));
    cluster_.register_program(name, std::move(body));
    const auto id = cluster_.submit_program(name, nodes, acpn);
    ASSERT_TRUE(cluster_.wait_job(id, 30'000ms).has_value());
  }

  core::DacCluster cluster_;
};

TEST_F(AcSessionTest, DoubleInitThrows) {
  std::atomic<bool> threw{false};
  run_job(0, [&](core::JobContext& ctx) {
    (void)ctx.session().ac_init();
    try {
      (void)ctx.session().ac_init();
    } catch (const util::ProtocolError&) {
      threw = true;
    }
    ctx.session().ac_finalize();
  });
  EXPECT_TRUE(threw);
}

TEST_F(AcSessionTest, GetBeforeInitThrows) {
  std::atomic<bool> threw{false};
  run_job(0, [&](core::JobContext& ctx) {
    try {
      (void)ctx.session().ac_get(1);
    } catch (const util::ProtocolError&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
}

TEST_F(AcSessionTest, InvalidHandleThrows) {
  std::atomic<int> threw{0};
  run_job(1, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    try {
      (void)s.ac_mem_alloc(AcHandle{}, 16);  // invalid rank
    } catch (const util::ProtocolError&) {
      ++threw;
    }
    try {
      (void)s.ac_mem_alloc(AcHandle{99}, 16);  // out of range
    } catch (const util::ProtocolError&) {
      ++threw;
    }
    s.ac_finalize();
  });
  EXPECT_EQ(threw, 2);
}

TEST_F(AcSessionTest, RankNumberingAcrossGrowth) {
  // Paper §III-D: static 1..x, first dynamic set x+1..x+y, next set after.
  std::atomic<bool> ok{false};
  run_job(2, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto statics = s.ac_init();
    ASSERT_EQ(statics.size(), 2u);
    EXPECT_EQ(statics[0].rank, 1);
    EXPECT_EQ(statics[1].rank, 2);
    auto g1 = s.ac_get(1);
    ASSERT_TRUE(g1.granted);
    EXPECT_EQ(g1.handles[0].rank, 3);
    auto g2 = s.ac_get(2);
    ASSERT_TRUE(g2.granted);
    EXPECT_EQ(g2.handles[0].rank, 4);
    EXPECT_EQ(g2.handles[1].rank, 5);
    EXPECT_EQ(s.accelerator_count(), 5);
    // LIFO release restores the previous layout.
    s.ac_free(g2.client_id);
    EXPECT_EQ(s.accelerator_count(), 3);
    s.ac_free(g1.client_id);
    EXPECT_EQ(s.accelerator_count(), 2);
    s.ac_finalize();
    ok = true;
  });
  EXPECT_TRUE(ok);
}

TEST_F(AcSessionTest, NonLifoFreeThrows) {
  std::atomic<bool> threw{false};
  run_job(0, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    auto g1 = s.ac_get(1);
    auto g2 = s.ac_get(1);
    ASSERT_TRUE(g1.granted && g2.granted);
    try {
      s.ac_free(g1.client_id);  // not the newest set
    } catch (const util::ProtocolError&) {
      threw = true;
    }
    s.ac_free(g2.client_id);
    s.ac_free(g1.client_id);
    s.ac_finalize();
  });
  EXPECT_TRUE(threw);
}

TEST_F(AcSessionTest, SurvivorsServeAfterRelease) {
  std::atomic<bool> ok{false};
  run_job(1, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto statics = s.ac_init();
    auto g1 = s.ac_get(2);
    ASSERT_TRUE(g1.granted);
    // Exercise a dynamic accelerator, then free the set.
    const auto p = s.ac_mem_alloc(g1.handles[0], 64);
    s.ac_mem_free(g1.handles[0], p);
    s.ac_free(g1.client_id);
    // The static accelerator must still respond.
    const auto q = s.ac_mem_alloc(statics[0], 64);
    s.ac_mem_free(statics[0], q);
    // And we can grow again after a release.
    auto g2 = s.ac_get(1);
    ASSERT_TRUE(g2.granted);
    EXPECT_EQ(g2.handles[0].rank, 2);
    s.ac_free(g2.client_id);
    s.ac_finalize();
    ok = true;
  });
  EXPECT_TRUE(ok);
}

TEST_F(AcSessionTest, RejectionLeavesSessionUsable) {
  std::atomic<bool> ok{false};
  run_job(1, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    auto statics = s.ac_init();
    auto got = s.ac_get(100);  // far more than the pool
    EXPECT_FALSE(got.granted);
    EXPECT_EQ(s.accelerator_count(), 1);
    const auto p = s.ac_mem_alloc(statics[0], 32);
    s.ac_mem_free(statics[0], p);
    s.ac_finalize();
    ok = true;
  });
  EXPECT_TRUE(ok);
}

TEST_F(AcSessionTest, FinalizeIsIdempotentAndDestructorSafe) {
  run_job(1, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    s.ac_finalize();
    s.ac_finalize();  // second call is a no-op
  });
  // Separate job: never finalizes explicitly; the session destructor must.
  run_job(1, [&](core::JobContext& ctx) { (void)ctx.session().ac_init(); });
  for (const auto& n : cluster_.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST_F(AcSessionTest, PartialGrantWhenPoolShort) {
  // Pool has 5 accelerators, 2 held statically by this job -> 3 free.
  std::atomic<int> got_count{-1};
  run_job(2, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    auto got = s.ac_get(/*count=*/5, /*min_count=*/2);
    got_count = got.granted ? static_cast<int>(got.handles.size()) : 0;
    if (got.granted) {
      // The partial set is fully usable.
      const auto p = s.ac_mem_alloc(got.handles.back(), 64);
      s.ac_mem_free(got.handles.back(), p);
      s.ac_free(got.client_id);
    }
    s.ac_finalize();
  });
  EXPECT_EQ(got_count, 3);
}

TEST_F(AcSessionTest, PartialRejectedBelowMin) {
  std::atomic<int> outcome{-1};
  run_job(2, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    // 3 free, but we insist on at least 4: must reject.
    auto got = s.ac_get(/*count=*/6, /*min_count=*/4);
    outcome = got.granted ? 1 : 0;
    s.ac_finalize();
  });
  EXPECT_EQ(outcome, 0);
}

TEST_F(AcSessionTest, BadMinCountErrors) {
  std::atomic<bool> threw{false};
  run_job(0, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    try {
      (void)s.ac_get(2, 3);  // min > count
    } catch (const torque::rpc::CallError&) {
      threw = true;
    }
    s.ac_finalize();
  });
  EXPECT_TRUE(threw);
}

TEST_F(AcSessionTest, CollectiveGetAllOrNothing) {
  std::atomic<int> rejected{0};
  run_job(0, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    // 2 CNs x 3 accelerators = 6 > 5 in the pool: must reject everywhere.
    auto got = s.ac_get_collective(ctx.world(), 3);
    if (!got.granted) ++rejected;
    EXPECT_EQ(s.accelerator_count(), 0);
    s.ac_finalize();
  }, /*nodes=*/2);
  EXPECT_EQ(rejected, 2);
}

TEST_F(AcSessionTest, CollectiveGetSplitsSlices) {
  std::atomic<int> ok{0};
  run_job(0, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    const int want = ctx.rank() == 0 ? 1 : 2;
    auto got = s.ac_get_collective(ctx.world(), want);
    ASSERT_TRUE(got.granted);
    EXPECT_EQ(static_cast<int>(got.handles.size()), want);
    EXPECT_EQ(s.accelerator_count(), want);
    // Each node's accelerators respond on its own communicator.
    const auto p = s.ac_mem_alloc(got.handles[0], 16);
    s.ac_mem_free(got.handles[0], p);
    s.ac_free_collective(ctx.world(), got.client_id);
    s.ac_finalize();
    ++ok;
  }, /*nodes=*/2);
  EXPECT_EQ(ok, 2);
}

TEST_F(AcSessionTest, ZeroCountCollectiveParticipation) {
  std::atomic<int> ok{0};
  run_job(0, [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    // Only rank 1 wants accelerators; rank 0 still participates.
    const int want = ctx.rank() == 0 ? 0 : 2;
    auto got = s.ac_get_collective(ctx.world(), want);
    ASSERT_TRUE(got.granted);
    EXPECT_EQ(static_cast<int>(got.handles.size()), want);
    s.ac_free_collective(ctx.world(), got.client_id);
    s.ac_finalize();
    ++ok;
  }, /*nodes=*/2);
  EXPECT_EQ(ok, 2);
}

}  // namespace
}  // namespace dac::rmlib
