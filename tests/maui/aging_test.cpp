// Priority-policy details: queue-time aging lifts long-waiting jobs over
// fresher high-QoS ones, and backfill reservations clear when the blocking
// job's resources release.
#include <gtest/gtest.h>

#include "simtime/clock.hpp"
#include "core/cluster.hpp"

namespace dac::maui {
namespace {

using namespace std::chrono_literals;
using core::DacCluster;
using core::DacClusterConfig;

torque::JobSpec sleep_job(const std::string& name, int nodes, int ms,
                          int walltime_ms, int priority = 0) {
  torque::JobSpec spec;
  spec.name = name;
  spec.program = core::kSleepProgram;
  util::ByteWriter w;
  w.put<std::uint64_t>(static_cast<std::uint64_t>(ms));
  spec.program_args = std::move(w).take();
  spec.resources.nodes = nodes;
  spec.resources.ppn = 8;
  spec.resources.walltime = std::chrono::milliseconds(walltime_ms);
  spec.priority = priority;
  return spec;
}

double start_of(DacCluster& cluster, torque::JobId id) {
  auto info = cluster.client().stat_job(id);
  return info ? info->start_time : -1.0;
}

TEST(Aging, QueueTimeLiftsOldJobs) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 1;
  config.policy = Policy::kPriority;
  // Strong aging: 1 second of waiting beats 0.05 QoS points.
  config.weights.queue_time = 100.0;
  config.weights.qos = 1.0;
  DacCluster cluster(config);

  auto holder = cluster.submit(sleep_job("hold", 1, 200, 400));
  ASSERT_TRUE(cluster.client().wait_for_state(
      holder, torque::JobState::kRunning, 10'000ms));
  // The old low-QoS job waits a while before the fresh high-QoS arrives.
  auto old_low = cluster.submit(sleep_job("old", 1, 10, 30, /*priority=*/0));
  dac::simtime::sleep_for(100ms);  // NOLINT-DACSCHED(sleep-poll)
  auto new_high = cluster.submit(sleep_job("new", 1, 10, 30, /*priority=*/5));
  ASSERT_TRUE(cluster.wait_job(old_low, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(new_high, 30'000ms).has_value());
  EXPECT_LT(start_of(cluster, old_low), start_of(cluster, new_high));
}

TEST(Aging, BlockedWideJobEventuallyRuns) {
  // Under backfill, the reservation must not starve: once the running job
  // ends, the wide job starts even while narrow jobs keep arriving.
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.policy = Policy::kBackfill;
  DacCluster cluster(config);

  auto runner = cluster.submit(sleep_job("r", 1, 120, 150));
  ASSERT_TRUE(cluster.client().wait_for_state(
      runner, torque::JobState::kRunning, 10'000ms));
  auto wide = cluster.submit(sleep_job("wide", 2, 20, 40));
  // A stream of narrow jobs tries to sneak in continuously.
  std::vector<torque::JobId> narrow;
  for (int i = 0; i < 5; ++i) {
    narrow.push_back(cluster.submit(sleep_job("n", 1, 15, 25)));
  }
  auto info = cluster.wait_job(wide, 30'000ms);
  ASSERT_TRUE(info.has_value());
  for (const auto id : narrow) {
    ASSERT_TRUE(cluster.wait_job(id, 30'000ms).has_value());
  }
}

TEST(Aging, PriorityPolicySkipsBlockedAndRunsSmaller) {
  // Unlike strict FIFO, the priority policy does not block the whole queue
  // behind an unsatisfiable job.
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 1;
  config.policy = Policy::kPriority;
  DacCluster cluster(config);

  auto impossible = cluster.submit(sleep_job("big", 64, 10, 20));
  auto small = cluster.submit(sleep_job("small", 1, 10, 20));
  ASSERT_TRUE(cluster.wait_job(small, 30'000ms).has_value());
  // The impossible job is still queued; clean it up.
  cluster.client().delete_job(impossible);
}

}  // namespace
}  // namespace dac::maui
