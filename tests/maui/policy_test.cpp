// Scheduler policy tests, run through the full system with the fast timing
// profile: FIFO blocking, priority ordering, fairshare penalties, EASY
// backfill, and the dynamic-first policy toggle.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "core/cluster.hpp"
#include "harness/scenario.hpp"

namespace dac::maui {
namespace {

using namespace std::chrono_literals;
using core::DacCluster;
using core::DacClusterConfig;

torque::JobSpec sleep_job(const std::string& name, int nodes, int ms,
                          int walltime_ms, int priority = 0,
                          const std::string& owner = "user") {
  torque::JobSpec spec;
  spec.name = name;
  spec.owner = owner;
  spec.program = core::kSleepProgram;
  util::ByteWriter w;
  w.put<std::uint64_t>(static_cast<std::uint64_t>(ms));
  spec.program_args = std::move(w).take();
  spec.resources.nodes = nodes;
  spec.resources.ppn = 8;  // whole-node
  spec.resources.walltime = std::chrono::milliseconds(walltime_ms);
  spec.priority = priority;
  return spec;
}

double start_of(DacCluster& cluster, torque::JobId id) {
  auto info = cluster.client().stat_job(id);
  return info ? info->start_time : -1.0;
}

TEST(Policy, FifoRunsInSubmitOrder) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 1;
  config.policy = Policy::kFifo;
  DacCluster cluster(config);

  // One node: three jobs must run strictly in submission order.
  auto a = cluster.submit(sleep_job("a", 1, 30, 50));
  auto b = cluster.submit(sleep_job("b", 1, 30, 50));
  auto c = cluster.submit(sleep_job("c", 1, 30, 50));
  ASSERT_TRUE(cluster.wait_job(c, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(a, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(b, 30'000ms).has_value());
  EXPECT_LT(start_of(cluster, a), start_of(cluster, b));
  EXPECT_LT(start_of(cluster, b), start_of(cluster, c));
}

TEST(Policy, FifoBlocksBehindWideJob) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.policy = Policy::kFifo;
  DacCluster cluster(config);

  auto wide_running = cluster.submit(sleep_job("w1", 1, 150, 200));
  auto wide_blocked = cluster.submit(sleep_job("w2", 2, 30, 50));
  auto narrow = cluster.submit(sleep_job("n", 1, 10, 20));
  ASSERT_TRUE(cluster.wait_job(narrow, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(wide_blocked, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(wide_running, 30'000ms).has_value());
  // Strict FIFO: the narrow job may not overtake the blocked wide job.
  EXPECT_GE(start_of(cluster, narrow), start_of(cluster, wide_blocked));
}

TEST(Policy, BackfillLetsNarrowJobThrough) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.policy = Policy::kBackfill;
  DacCluster cluster(config);

  auto wide_running = cluster.submit(sleep_job("w1", 1, 150, 200));
  // Give the first job a head start so it holds its node.
  ASSERT_TRUE(cluster.client().wait_for_state(
      wide_running, torque::JobState::kRunning, 10'000ms));
  auto wide_blocked = cluster.submit(sleep_job("w2", 2, 30, 300));
  auto narrow = cluster.submit(sleep_job("n", 1, 10, 20));
  ASSERT_TRUE(cluster.wait_job(narrow, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(wide_blocked, 30'000ms).has_value());
  // EASY backfill: the short narrow job runs before the blocked wide job
  // (it finishes before the reservation's shadow time).
  EXPECT_LT(start_of(cluster, narrow), start_of(cluster, wide_blocked));
}

TEST(Policy, PriorityOrdersByQos) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 1;
  config.policy = Policy::kPriority;
  DacCluster cluster(config);

  // Occupy the node, then queue low before high priority.
  auto holder = cluster.submit(sleep_job("hold", 1, 100, 150));
  ASSERT_TRUE(cluster.client().wait_for_state(
      holder, torque::JobState::kRunning, 10'000ms));
  auto low = cluster.submit(sleep_job("low", 1, 10, 20, /*priority=*/0));
  auto high = cluster.submit(sleep_job("high", 1, 10, 20, /*priority=*/5));
  ASSERT_TRUE(cluster.wait_job(low, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(high, 30'000ms).has_value());
  EXPECT_LT(start_of(cluster, high), start_of(cluster, low));
}

TEST(Policy, FairshareDemotesHeavyUser) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 1;
  config.policy = Policy::kPriority;
  config.weights.fairshare = 50.0;
  config.weights.queue_time = 0.0;  // isolate the fairshare factor
  config.weights.fairshare_halflife = 1e6;
  DacCluster cluster(config);

  // "hog" accumulates usage first.
  auto h1 = cluster.submit(sleep_job("h1", 1, 80, 2000, 0, "hog"));
  ASSERT_TRUE(cluster.client().wait_for_state(
      h1, torque::JobState::kRunning, 10'000ms));
  // While the node is busy, both users queue one job each (hog first).
  auto h2 = cluster.submit(sleep_job("h2", 1, 10, 2000, 0, "hog"));
  auto f1 = cluster.submit(sleep_job("f1", 1, 10, 2000, 0, "fresh"));
  ASSERT_TRUE(cluster.wait_job(h2, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(f1, 30'000ms).has_value());
  // The fresh user's job must overtake the hog's.
  EXPECT_LT(start_of(cluster, f1), start_of(cluster, h2));
}

// Ported onto the Scenario harness: the grant is verified from the trace —
// the scheduler's maui.grant_dyn decision span joins the submission's trace
// even with dynamic-first scheduling disabled.
TEST(Policy, DynamicFirstToggleStillGrants) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 1;
  config.accel_nodes = 2;
  config.dynamic_first = false;  // ablation A3 configuration
  dac::testing::Scenario scenario(config);

  std::atomic<bool> granted{false};
  scenario.program("dyn", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    auto got = s.ac_get(1);
    granted = got.granted;
    if (got.granted) s.ac_free(got.client_id);
    s.ac_finalize();
  });
  const auto id = scenario.submit_program("dyn", 1, 0);
  ASSERT_TRUE(scenario.wait_job(id, 30'000ms).has_value());
  EXPECT_TRUE(granted);
  const auto trace_id = scenario.await_job_trace(id);
  ASSERT_NE(trace_id, 0u);
  auto view = scenario.trace();
  const auto* grant = view.first("maui.grant_dyn");
  ASSERT_NE(grant, nullptr);
  EXPECT_EQ(grant->trace, trace_id);
  EXPECT_EQ(dac::testing::TraceView::note(*grant, "job"), std::to_string(id));
}

TEST(Policy, SchedulerCountsBackfills) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.policy = Policy::kBackfill;
  DacCluster cluster(config);

  auto wide_running = cluster.submit(sleep_job("w1", 1, 150, 200));
  ASSERT_TRUE(cluster.client().wait_for_state(
      wide_running, torque::JobState::kRunning, 10'000ms));
  auto wide_blocked = cluster.submit(sleep_job("w2", 2, 30, 300));
  auto narrow = cluster.submit(sleep_job("n", 1, 10, 20));
  ASSERT_TRUE(cluster.wait_job(wide_blocked, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(narrow, 30'000ms).has_value());
  EXPECT_GE(cluster.scheduler_stats().backfilled, 1u);
}

TEST(Policy, DynOwnerPoolCapLimitsOneOwner) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.accel_nodes = 4;
  config.dyn_owner_pool_cap = 0.5;  // one owner may hold at most 2 of 4
  DacCluster cluster(config);

  std::atomic<int> first_grant{-1};
  std::atomic<int> second_grant{-1};
  cluster.register_program("capped", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    // Within the cap: 2 of 4.
    auto g1 = s.ac_get(2);
    first_grant = g1.granted ? 1 : 0;
    // Beyond the cap: this owner would hold 3 of 4.
    auto g2 = s.ac_get(1);
    second_grant = g2.granted ? 1 : 0;
    if (g2.granted) s.ac_free(g2.client_id);
    if (g1.granted) s.ac_free(g1.client_id);
    s.ac_finalize();
  });
  const auto id = cluster.submit_program("capped", 1, 0);
  ASSERT_TRUE(cluster.wait_job(id, 30'000ms).has_value());
  EXPECT_EQ(first_grant, 1);
  EXPECT_EQ(second_grant, 0);
  EXPECT_GE(cluster.scheduler_stats().dyn_capped, 1u);
}

TEST(Policy, DynOwnerPoolCapIsPerOwner) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.accel_nodes = 4;
  config.dyn_owner_pool_cap = 0.5;
  DacCluster cluster(config);

  std::atomic<int> grants{0};
  cluster.register_program("fair", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    auto g = s.ac_get(2);
    if (g.granted) {
      ++grants;
      s.ac_free(g.client_id);
    }
    s.ac_finalize();
  });
  // Two different owners: both must get their half of the pool.
  torque::JobSpec a;
  a.name = a.program = "fair";
  a.owner = "alice";
  a.resources.nodes = 1;
  torque::JobSpec b = a;
  b.owner = "bob";
  const auto ja = cluster.submit(a);
  const auto jb = cluster.submit(b);
  ASSERT_TRUE(cluster.wait_job(ja, 30'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(jb, 30'000ms).has_value());
  EXPECT_EQ(grants, 2);
}

}  // namespace
}  // namespace dac::maui
