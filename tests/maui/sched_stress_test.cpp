// Scheduler stress suite (ctest label: sched): concurrent dynget storms
// against the full server/scheduler pair on the discrete-event clock,
// checking the invariants the high-throughput path must preserve
// (docs/SCHEDULING.md):
//   - every caller gets a decision (starvation bound: bounded p99 wait),
//   - no slot is ever double-granted (trace replay over alloc events),
//   - slot conservation: every grant is matched by a release and the node
//     table drains to zero used slots,
// and that the batched/serial and incremental/full-fetch ablations all
// uphold them — the decision *logic* is shared, only the message shape and
// the modeled costs differ.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "harness/scenario.hpp"
#include "simtime/clock.hpp"
#include "torque/ifl.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace dac::maui {
namespace {

using namespace std::chrono_literals;

struct StormSpec {
  int jobs = 4;
  int callers_per_job = 4;  // concurrent dynget threads per job
  int rounds = 1;           // dynget/dynfree rounds per thread
  std::size_t compute = 2;
  std::size_t accel = 4;
  bool batched = true;
  bool incremental = true;
};

struct StormStats {
  int expected = 0;
  int decided = 0;
  int granted = 0;
  util::Samples wait_s;  // per-call decision latency, virtual seconds
};

// Boots a cluster, parks `jobs` holder jobs in kRunning, then fires
// jobs*callers_per_job concurrent dynget callers at the server. Callers are
// plain IFL clients (one per thread, the per-job serialization happens
// server-side), so the storm measures the batch system, not MPI spawns.
void run_storm(const StormSpec& spec, StormStats* out) {
  std::atomic<bool> release{false};  // outlives the scenario
  testing::Scenario s;
  s.compute_nodes(spec.compute).accel_nodes(spec.accel);
  s.clock_mode(simtime::Mode::kDiscreteEvent);
  s.config().sched_batched_dyn = spec.batched;
  s.config().sched_incremental_fetch = spec.incremental;
  s.program("hold", [&release](core::JobContext&) {
    (void)testing::await([&release] { return release.load(); }, 120'000ms);
  });
  auto& cluster = s.boot();

  std::vector<torque::JobId> ids;
  for (int j = 0; j < spec.jobs; ++j) {
    ids.push_back(s.submit_program("hold", /*nodes=*/1, /*acpn=*/0));
  }
  {
    auto client = cluster.client();
    for (const auto id : ids) {
      const auto info =
          client.wait_for_state(id, torque::JobState::kRunning, 60'000ms);
      ASSERT_TRUE(info.has_value() &&
                  info->state == torque::JobState::kRunning)
          << "holder job " << id << " never started";
    }
  }

  const int callers = spec.jobs * spec.callers_per_job;
  out->expected = callers * spec.rounds;
  // One IFL client per caller, created up front so endpoint setup does not
  // race the thread spawns.
  std::vector<std::unique_ptr<torque::Ifl>> clients;
  clients.reserve(callers);
  for (int c = 0; c < callers; ++c) {
    clients.push_back(std::make_unique<torque::Ifl>(
        cluster.head(), cluster.server_address()));
  }

  Mutex stats_mu{"test.storm_stats"};
  {
    std::vector<simtime::ActorThread> threads;
    threads.reserve(callers);
    for (int c = 0; c < callers; ++c) {
      torque::Ifl* ifl = clients[static_cast<std::size_t>(c)].get();
      const auto job = ids[static_cast<std::size_t>(c % spec.jobs)];
      threads.emplace_back([&, ifl, job] {
        for (int r = 0; r < spec.rounds; ++r) {
          const auto t0 = simtime::now();
          const auto reply = ifl->dynget(job, /*count=*/1, /*min_count=*/1,
                                         torque::NodeKind::kAccelerator,
                                         60'000ms);
          const double waited = util::to_seconds(simtime::now() - t0);
          {
            ScopedLock lock(stats_mu);
            ++out->decided;
            out->wait_s.add(waited);
            if (reply.granted) ++out->granted;
          }
          if (reply.granted) ifl->dynfree(job, reply.client_id);
        }
      });
    }
  }  // joins every caller

  release.store(true);
  for (const auto id : ids) {
    ASSERT_TRUE(s.wait_job(id, 60'000ms).has_value())
        << "holder job " << id << " did not finish";
  }
  for (const auto id : ids) ASSERT_NE(s.await_job_trace(id), 0u);

  // No double-grant anywhere in the storm, and conservation: the node table
  // agrees every grant was returned.
  const auto view = s.trace();
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));
  EXPECT_EQ(view.named("alloc.assign").size(),
            view.named("alloc.release").size());
  for (const auto& n : cluster.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname << " leaked slots";
  }
}

// The headline storm: 256 concurrent dynget callers (16 jobs x 16 threads)
// against an 8-slot accelerator pool. Every caller must be decided — grants
// and rejections are both legal, hangs and starvation are not.
TEST(SchedStorm, Storm256CallersBoundedWait) {
  StormSpec spec;
  spec.jobs = 16;
  spec.callers_per_job = 16;
  spec.rounds = 1;
  spec.compute = 2;  // 16 CN slots, one per holder job
  spec.accel = 8;
  StormStats stats;
  run_storm(spec, &stats);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(stats.decided, stats.expected);
  EXPECT_GT(stats.granted, 0) << "an 8-slot pool must grant something";
  // Starvation bound, in virtual seconds: 16 requests serialized per job,
  // each decided within a handful of scheduler cycles. 30 s of virtual time
  // is an order of magnitude of slack over the modeled costs.
  EXPECT_LT(stats.wait_s.percentile(99.0), 30.0)
      << "p99 dynget wait blew the starvation bound";
  EXPECT_LT(stats.wait_s.percentile(50.0), 10.0);
}

// Batched and serial servicing must uphold the same invariants and decide
// the same number of requests — the batch is a transport change, not a
// policy change.
TEST(SchedStorm, BatchedAndSerialBothConserve) {
  for (const bool batched : {true, false}) {
    SCOPED_TRACE(::testing::Message() << "batched=" << batched);
    StormSpec spec;
    spec.jobs = 4;
    spec.callers_per_job = 4;
    spec.rounds = 2;
    spec.accel = 4;
    spec.batched = batched;
    StormStats stats;
    run_storm(spec, &stats);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(stats.decided, stats.expected);
    EXPECT_GT(stats.granted, 0);
  }
}

// Same for the fetch path: incremental deltas and the legacy full fetch
// feed the same decision logic (the mirror-level contract is pinned by
// sched_equivalence_test.cpp; this is the end-to-end spot check).
TEST(SchedStorm, IncrementalAndFullFetchBothConserve) {
  for (const bool incremental : {true, false}) {
    SCOPED_TRACE(::testing::Message() << "incremental=" << incremental);
    StormSpec spec;
    spec.jobs = 4;
    spec.callers_per_job = 4;
    spec.rounds = 2;
    spec.accel = 4;
    spec.incremental = incremental;
    StormStats stats;
    run_storm(spec, &stats);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(stats.decided, stats.expected);
    EXPECT_GT(stats.granted, 0);
  }
}

}  // namespace
}  // namespace dac::maui
