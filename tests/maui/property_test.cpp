// Property-based scheduler test: a seeded random stream of jobs with mixed
// static and dynamic accelerator demand, checked against three invariants
// that must hold for every schedule the scheduler can produce:
//   1. no slot double-grant — replaying the alloc.assign/alloc.release
//      events never oversubscribes a host (TraceView::no_allocation_overlap);
//   2. no starvation beyond the configured window — every submitted job
//      completes within the wait_job bound;
//   3. conservation of AC slots — every assignment is matched by a release
//      and the node table reports zero slots in use after the stream drains.
#include <gtest/gtest.h>

#include <random>

#include "harness/scenario.hpp"

namespace dac::maui {
namespace {

using namespace std::chrono_literals;

// One job's demand, drawn up front from the seeded generator so the stream
// is reproducible from the seed alone.
struct Demand {
  int acpn = 0;        // static accelerators per node
  std::uint64_t rounds = 1;  // dynamic get/free rounds
  std::uint64_t want = 1;    // accelerators requested per round
};

void run_stream(std::uint32_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed=0x" << std::hex << seed);
  std::mt19937 rng(seed);  // explicit seed: the stream must be replayable
  std::uniform_int_distribution<int> acpn_dist(0, 1);
  std::uniform_int_distribution<std::uint64_t> rounds_dist(1, 2);
  std::uniform_int_distribution<std::uint64_t> want_dist(1, 2);

  constexpr int kJobs = 5;
  std::vector<Demand> stream;
  for (int i = 0; i < kJobs; ++i) {
    Demand d;
    d.acpn = acpn_dist(rng);
    d.rounds = rounds_dist(rng);
    d.want = want_dist(rng);
    if (i == 0) d.acpn = 1;  // at least one static allocation in the stream
    stream.push_back(d);
  }

  testing::Scenario s;
  s.compute_nodes(2).accel_nodes(4);
  s.program("demand", [](core::JobContext& ctx) {
    util::ByteReader r(ctx.info().program_args);
    const auto rounds = r.get<std::uint64_t>();
    const auto want = r.get<std::uint64_t>();
    auto& ses = ctx.session();
    (void)ses.ac_init();
    for (std::uint64_t i = 0; i < rounds; ++i) {
      // min_count 1: partial grants and rejections are both legal outcomes;
      // the invariants must hold either way.
      auto got = ses.ac_get(static_cast<int>(want), /*min_count=*/1);
      if (got.granted) ses.ac_free(got.client_id);
    }
    ses.ac_finalize();
  });

  std::vector<torque::JobId> ids;
  for (const auto& d : stream) {
    util::ByteWriter w;
    w.put<std::uint64_t>(d.rounds);
    w.put<std::uint64_t>(d.want);
    ids.push_back(
        s.submit_program("demand", /*nodes=*/1, d.acpn, std::move(w).take()));
  }

  // Property 2: the starvation window. Every job of the stream finishes
  // within the bound even though they contend for nodes and accelerators.
  for (const auto id : ids) {
    EXPECT_TRUE(s.wait_job(id, 60'000ms).has_value())
        << "job " << id << " starved beyond the window";
  }
  for (const auto id : ids) {
    ASSERT_NE(s.await_job_trace(id), 0u);
  }

  // Property 1: no double-grant anywhere in the schedule.
  auto view = s.trace();
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));

  // Property 3: conservation. Assignments balance releases, and the node
  // table agrees that everything returned to the pool.
  EXPECT_FALSE(view.named("alloc.assign").empty());
  EXPECT_EQ(view.named("alloc.assign").size(),
            view.named("alloc.release").size());
  for (const auto& n : s.cluster().client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname << " leaked slots";
  }
}

TEST(SchedulerProperty, RandomDemandStreamSeedA) { run_stream(0x5EED'0001u); }

TEST(SchedulerProperty, RandomDemandStreamSeedB) { run_stream(0x5EED'0002u); }

}  // namespace
}  // namespace dac::maui
