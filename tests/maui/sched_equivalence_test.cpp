// The incremental ≡ full-rescan contract, pinned at the feed level: a model
// server mutates scheduler-visible state exactly the way PbsServer does
// (every job mutation routed through DirtyTracker::touch, every node change
// through the NodeDb's own dirty sets), serves SchedDelta fetches the way
// on_get_sched builds them, and the test asserts that a QueueMirror folding
// any prefix of incremental deltas reconstructs byte-identical fetch inputs
// to a full fetch taken at the same instant.
//
// This is the property that makes incremental_fetch safe to ship as the
// default: the scheduler's decisions are a pure function of (queue(),
// node_views()), so reconstruction equivalence implies decision equivalence.
// The suite runs ≥1000 seeded random event streams; each stream also
// exercises the forced full-rescan path (which must change nothing) and a
// scheduler restart (epoch mismatch forces a full serve).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "maui/queue_mirror.hpp"
#include "torque/node_db.hpp"
#include "torque/sched_feed.hpp"
#include "torque/server.hpp"
#include "util/bytes.hpp"

namespace dac::maui {
namespace {

// Scheduler-visible server state plus the same dirty bookkeeping PbsServer
// keeps: DirtyTracker for jobs, the NodeDb's internal dirty sets for nodes.
struct ModelServer {
  std::map<torque::JobId, torque::JobInfo> jobs;
  torque::NodeDb nodes{4};  // several shards so delta order crosses shards
  torque::DirtyTracker feed;
  std::vector<torque::DynQueueEntry> dyn;
  std::vector<elastic::JobView> elastic;
  double now = 0.0;
  torque::JobId next_id = 1;
  std::uint64_t next_dyn = 1;

  static bool terminal(const torque::JobInfo& j) {
    return j.state == torque::JobState::kComplete ||
           j.state == torque::JobState::kCancelled;
  }

  // Mirrors PbsServer::on_get_sched: the real fetch, draining the dirty
  // bookkeeping and advancing the epoch.
  torque::SchedDelta fetch(std::uint64_t client_epoch, bool force_full) {
    const auto f = feed.begin_fetch(client_epoch, force_full);
    torque::SchedDelta d;
    d.epoch = f.epoch;
    d.full = f.full;
    d.now = now;
    if (f.full) {
      for (const auto& [id, info] : jobs) {
        if (!terminal(info)) d.jobs.push_back(info);
      }
      d.nodes = nodes.snapshot();
      (void)nodes.drain_dirty();
    } else {
      for (const auto id : f.jobs) {
        if (const auto it = jobs.find(id); it != jobs.end()) {
          d.jobs.push_back(it->second);
        }
      }
      for (const auto& host : nodes.drain_dirty()) {
        if (auto st = nodes.lookup(host)) d.nodes.push_back(*std::move(st));
      }
    }
    d.dyn = dyn;
    d.elastic = elastic;
    return d;
  }

  // The comparison oracle: a full reconstruction of the current state that
  // does NOT touch the dirty bookkeeping, so taking it never perturbs the
  // incremental stream under test.
  torque::SchedDelta reference() const {
    torque::SchedDelta d;
    d.epoch = 0;
    d.full = true;
    d.now = now;
    for (const auto& [id, info] : jobs) {
      if (!terminal(info)) d.jobs.push_back(info);
    }
    d.nodes = nodes.snapshot();
    d.dyn = dyn;
    d.elastic = elastic;
    return d;
  }
};

// Every delta crosses the wire before it is folded, so the serializers are
// part of the property: a field put_sched_delta forgets would surface as an
// equivalence failure, not silently ride along in-process.
torque::SchedDelta round_trip(const torque::SchedDelta& d) {
  util::ByteWriter w;
  torque::put_sched_delta(w, d);
  const util::Bytes bytes = std::move(w).take();
  util::ByteReader r(bytes);
  return torque::get_sched_delta(r);
}

util::Bytes queue_bytes(const QueueMirror& m) {
  util::ByteWriter w;
  torque::put_queue_snapshot(w, m.queue());
  return std::move(w).take();
}

::testing::AssertionResult mirrors_equal(const QueueMirror& inc,
                                         const QueueMirror& full) {
  if (queue_bytes(inc) != queue_bytes(full)) {
    return ::testing::AssertionFailure()
           << "queue() diverged: incremental has " << inc.job_count()
           << " jobs, full has " << full.job_count();
  }
  const auto a = inc.node_views();
  const auto b = full.node_views();
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "node_views() size: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].hostname != b[i].hostname || a[i].kind != b[i].kind ||
        a[i].free != b[i].free) {
      return ::testing::AssertionFailure()
             << "node_views()[" << i << "]: " << a[i].hostname << "/"
             << a[i].free << " vs " << b[i].hostname << "/" << b[i].free;
    }
  }
  return ::testing::AssertionSuccess();
}

// One random scheduler-visible mutation, routed through the same dirty
// bookkeeping the server uses. The op mix is weighted toward the lifecycle
// transitions (submit/start/finish) that the incremental feed must never
// miss.
void mutate(ModelServer& s, std::mt19937& rng) {
  s.now += 0.001 * static_cast<double>(rng() % 50);
  switch (rng() % 10) {
    case 0:
    case 1: {  // submit
      torque::JobInfo j;
      j.id = s.next_id++;
      j.spec.name = "j" + std::to_string(j.id);
      j.spec.owner = (rng() % 2) != 0 ? "alice" : "bob";
      j.spec.priority = static_cast<int>(rng() % 5);
      j.spec.resources.acpn = static_cast<int>(rng() % 2);
      j.submit_time = s.now;
      s.jobs.emplace(j.id, j);
      s.feed.touch(j.id);
      break;
    }
    case 2:
    case 3: {  // start a queued job on a random node
      for (auto& [id, info] : s.jobs) {
        if (info.state != torque::JobState::kQueued) continue;
        const std::string host = "cn" + std::to_string(rng() % 6);
        if (!s.nodes.assign(host, id, 1)) break;  // full/unknown: skip round
        info.state = torque::JobState::kRunning;
        info.start_time = s.now;
        info.compute_hosts = {host};
        s.feed.touch(id);
        break;
      }
      break;
    }
    case 4: {  // complete a running job (terminal transition)
      for (auto& [id, info] : s.jobs) {
        if (info.state != torque::JobState::kRunning) continue;
        info.state = torque::JobState::kComplete;
        info.end_time = s.now;
        for (const auto& h : info.compute_hosts) s.nodes.release(h, id);
        s.feed.touch(id);
        break;
      }
      break;
    }
    case 5: {  // qalter on a queued job
      for (auto it = s.jobs.rbegin(); it != s.jobs.rend(); ++it) {
        if (it->second.state != torque::JobState::kQueued) continue;
        it->second.spec.priority = static_cast<int>(rng() % 9);
        s.feed.touch(it->first);
        break;
      }
      break;
    }
    case 6: {  // (re)register a node — upsert dirties it
      torque::NodeStatus n;
      n.hostname = "cn" + std::to_string(rng() % 6);
      n.kind = torque::NodeKind::kCompute;
      n.np = 2 + static_cast<int>(rng() % 3);
      n.up = true;
      n.liveness = torque::Liveness::kUp;
      // upsert replaces the record, so re-register clears usage like a mom
      // restart would; release job bookkeeping to keep the model honest.
      s.nodes.upsert(n);
      break;
    }
    case 7: {  // heartbeat (only a revive is scheduler-visible)
      (void)s.nodes.heartbeat("cn" + std::to_string(rng() % 6), s.now);
      break;
    }
    case 8: {  // failure-detector tick: transitions dirty the nodes
      (void)s.nodes.refresh_liveness(s.now, /*suspect_after=*/0.5,
                                     /*down_after=*/1.0);
      break;
    }
    case 9: {  // dynamic-request churn (always shipped complete)
      if ((rng() % 2) != 0 || s.dyn.empty()) {
        torque::DynQueueEntry e;
        e.dyn_id = s.next_dyn++;
        e.job = 1 + rng() % std::max<torque::JobId>(1, s.next_id - 1);
        e.count = 1 + static_cast<int>(rng() % 3);
        e.min_count = 1;
        e.arrival = s.now;
        s.dyn.push_back(e);
      } else {
        s.dyn.erase(s.dyn.begin());
      }
      // Elastic views ride the same always-complete channel.
      if ((rng() % 3) == 0) {
        elastic::JobView v;
        v.job = 1 + rng() % std::max<torque::JobId>(1, s.next_id - 1);
        v.can_grow = (rng() % 2) != 0;
        v.appetite = static_cast<std::int32_t>(rng() % 4);
        s.elastic.assign(1, v);
      }
      break;
    }
  }
}

void run_stream(std::uint32_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed=0x" << std::hex << seed);
  std::mt19937 rng(seed);  // explicit seed: streams must be replayable
  ModelServer server;
  for (int i = 0; i < 6; ++i) {  // starting topology
    torque::NodeStatus n;
    n.hostname = "cn" + std::to_string(i);
    n.kind = i < 4 ? torque::NodeKind::kCompute : torque::NodeKind::kAccelerator;
    n.np = i < 4 ? 4 : 1;
    server.nodes.upsert(n);
    (void)server.nodes.heartbeat(n.hostname, 0.0);
  }

  QueueMirror mirror;  // the incremental consumer under test
  const int fetches = 6 + static_cast<int>(rng() % 6);
  for (int f = 0; f < fetches; ++f) {
    const int burst = 1 + static_cast<int>(rng() % 7);
    for (int e = 0; e < burst; ++e) mutate(server, rng);

    // Every ~4th fetch forces a rescan, like SchedulerConfig::
    // full_rescan_every does; the rescan must be a no-op on the fold.
    const bool force_full = f != 0 && (f % 4) == 0;
    mirror.apply(round_trip(server.fetch(mirror.epoch(), force_full)));

    QueueMirror oracle;
    oracle.apply(round_trip(server.reference()));
    ASSERT_TRUE(mirrors_equal(mirror, oracle))
        << "after fetch " << f << (force_full ? " (forced full)" : "");
  }

  // Scheduler restart: a fresh mirror opens with epoch 0, which must force
  // a full serve regardless of the tracker's accumulated epoch.
  for (int e = 0; e < 3; ++e) mutate(server, rng);
  QueueMirror restarted;
  const auto d = round_trip(server.fetch(restarted.epoch(), false));
  ASSERT_TRUE(d.full) << "epoch-0 fetch must be served full";
  restarted.apply(d);
  QueueMirror oracle;
  oracle.apply(round_trip(server.reference()));
  ASSERT_TRUE(mirrors_equal(restarted, oracle));

  // And the restarted mirror keeps folding deltas correctly: the old mirror
  // is now the stale consumer, whose next fetch (mismatched epoch) must be
  // served full again rather than a delta built for someone else.
  for (int e = 0; e < 3; ++e) mutate(server, rng);
  mirror.apply(round_trip(server.fetch(mirror.epoch(), false)));
  QueueMirror oracle2;
  oracle2.apply(round_trip(server.reference()));
  ASSERT_TRUE(mirrors_equal(mirror, oracle2));
}

TEST(SchedEquivalence, SeededStreamsBlockA) {
  for (std::uint32_t s = 0; s < 250; ++s) run_stream(0xD0'0000u + s);
}

TEST(SchedEquivalence, SeededStreamsBlockB) {
  for (std::uint32_t s = 0; s < 250; ++s) run_stream(0xD1'0000u + s);
}

TEST(SchedEquivalence, SeededStreamsBlockC) {
  for (std::uint32_t s = 0; s < 250; ++s) run_stream(0xD2'0000u + s);
}

TEST(SchedEquivalence, SeededStreamsBlockD) {
  for (std::uint32_t s = 0; s < 250; ++s) run_stream(0xD3'0000u + s);
}

// A delta with nothing dirty must still advance the epoch and fold to the
// same state — the idle-cycle case the scheduler hits constantly.
TEST(SchedEquivalence, EmptyDeltaIsIdentity) {
  ModelServer server;
  torque::NodeStatus n;
  n.hostname = "cn0";
  n.np = 4;
  server.nodes.upsert(n);
  std::mt19937 rng(0xE5EEDu);
  for (int i = 0; i < 5; ++i) mutate(server, rng);

  QueueMirror mirror;
  mirror.apply(round_trip(server.fetch(mirror.epoch(), false)));
  const auto before = queue_bytes(mirror);
  const auto epoch_before = mirror.epoch();

  const auto idle = round_trip(server.fetch(mirror.epoch(), false));
  EXPECT_FALSE(idle.full);
  EXPECT_TRUE(idle.jobs.empty());
  EXPECT_TRUE(idle.nodes.empty());
  mirror.apply(idle);
  EXPECT_GT(mirror.epoch(), epoch_before);
  EXPECT_EQ(queue_bytes(mirror), before);
}

}  // namespace
}  // namespace dac::maui
