// Fabric-level fault injection: installed FaultPlans drop/duplicate/delay
// real messages, injected drops are accounted separately from closed-mailbox
// drops, and the jitter knob preserves the per-pair FIFO guarantee.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "faults/fault_plan.hpp"
#include "util/bytes.hpp"
#include "vnet/fabric.hpp"

namespace dac::faults {
namespace {

using namespace std::chrono_literals;

vnet::NetworkModel fast_model() {
  vnet::NetworkModel m;
  m.latency = std::chrono::microseconds(100);
  m.loopback_latency = std::chrono::microseconds(10);
  m.bytes_per_second = 1e9;
  return m;
}

vnet::Message msg(vnet::NodeId from, vnet::NodeId to, std::uint32_t type) {
  return vnet::Message{vnet::Address{from, 0}, vnet::Address{to, 0}, type,
                       util::Bytes(8)};
}

TEST(FaultInjectionTest, InjectedDropsAccountedSeparatelyFromClosed) {
  vnet::Fabric fabric(fast_model());
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  FaultRates rates;
  rates.drop = 1.0;
  auto plan = std::make_shared<FaultPlan>(1, rates);
  fabric.set_fault_injector(plan);

  for (int i = 0; i < 5; ++i) fabric.send(msg(0, 1, 7));
  // Injected drops are counted synchronously at send().
  EXPECT_EQ(fabric.messages_dropped_injected(), 5u);
  EXPECT_EQ(fabric.messages_dropped_closed(), 0u);
  EXPECT_EQ(fabric.messages_dropped(), 0u);  // historical name == closed
  EXPECT_FALSE(box->pop_for(50ms).has_value());
  EXPECT_EQ(fabric.messages_delivered(), 0u);
  EXPECT_EQ(plan->counters().drops, 5u);
}

TEST(FaultInjectionTest, ClosedMailboxDropsStayInClosedCounter) {
  vnet::Fabric fabric(fast_model());
  auto plan = std::make_shared<FaultPlan>(1);  // healthy plan installed
  fabric.set_fault_injector(plan);
  auto live = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{2, 0}, live);

  // The dead-address message is scheduled before the live one (same model
  // latency, lower sequence number), so once the live message arrives the
  // dead one has been processed — no polling needed.
  fabric.send(msg(0, 9, 1));
  fabric.send(msg(0, 2, 2));
  ASSERT_TRUE(live->pop_for(1000ms).has_value());
  EXPECT_EQ(fabric.messages_dropped_closed(), 1u);
  EXPECT_EQ(fabric.messages_dropped_injected(), 0u);
}

TEST(FaultInjectionTest, DuplicateDeliversTwoCopies) {
  vnet::Fabric fabric(fast_model());
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  FaultRates rates;
  rates.duplicate = 1.0;
  fabric.set_fault_injector(std::make_shared<FaultPlan>(1, rates));

  fabric.send(msg(0, 1, 42));
  auto first = box->pop_for(1000ms);
  auto second = box->pop_for(1000ms);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->type, 42u);
  EXPECT_EQ(second->type, 42u);
  EXPECT_EQ(fabric.messages_duplicated(), 1u);
  EXPECT_EQ(fabric.messages_delivered(), 2u);
}

TEST(FaultInjectionTest, InjectedDelayStillDelivers) {
  vnet::Fabric fabric(fast_model());
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  FaultRates rates;
  rates.delay = 1.0;
  rates.max_extra_delay = std::chrono::microseconds(2000);
  auto plan = std::make_shared<FaultPlan>(1, rates);
  fabric.set_fault_injector(plan);

  for (int i = 0; i < 10; ++i) fabric.send(msg(0, 1, 1));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(box->pop_for(1000ms).has_value()) << i;
  }
  EXPECT_EQ(plan->counters().delays, 10u);
}

TEST(FaultInjectionTest, ClearingInjectorRestoresHealthyFabric) {
  vnet::Fabric fabric(fast_model());
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  FaultRates rates;
  rates.drop = 1.0;
  fabric.set_fault_injector(std::make_shared<FaultPlan>(1, rates));
  fabric.send(msg(0, 1, 1));
  EXPECT_EQ(fabric.messages_dropped_injected(), 1u);

  fabric.set_fault_injector(nullptr);
  fabric.send(msg(0, 1, 2));
  auto delivered = box->pop_for(1000ms);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->type, 2u);
  EXPECT_EQ(fabric.messages_dropped_injected(), 1u);
}

TEST(FaultInjectionTest, JitterPreservesPerPairFifo) {
  auto model = fast_model();
  model.jitter = std::chrono::microseconds(500);  // 5x the base latency
  vnet::Fabric fabric(model);
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  for (std::uint32_t i = 0; i < 50; ++i) fabric.send(msg(0, 1, i));
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto m = box->pop_for(1000ms);
    ASSERT_TRUE(m.has_value()) << i;
    EXPECT_EQ(m->type, i);  // jitter never reorders a (src, dst) stream
  }
}

TEST(FaultInjectionTest, ScriptedPartitionBlocksFabricTraffic) {
  vnet::Fabric fabric(fast_model());
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  auto plan = std::make_shared<FaultPlan>(1);
  plan->at(1, {FaultEventKind::kPartition, 0, 1});
  fabric.set_fault_injector(plan);

  fabric.send(msg(0, 1, 1));  // decision 0: passes
  fabric.send(msg(0, 1, 2));  // decision 1: partition fires, blocked
  ASSERT_TRUE(box->pop_for(1000ms).has_value());
  EXPECT_FALSE(box->pop_for(50ms).has_value());
  EXPECT_EQ(plan->counters().blocked, 1u);

  plan->heal(0, 1);
  fabric.send(msg(0, 1, 3));
  auto m = box->pop_for(1000ms);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, 3u);
}

}  // namespace
}  // namespace dac::faults
