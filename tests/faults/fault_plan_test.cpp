// FaultPlan unit tests: the determinism contract (same seed + same schedule
// + same traffic order => identical fault trace), rate semantics, scripted
// and imperative topology transitions, and the metrics export.
#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "svc/metrics.hpp"

namespace dac::faults {
namespace {

// A fixed synthetic traffic pattern: message i goes (i % 5) -> ((i+1) % 5).
vnet::FaultDecision drive(FaultPlan& plan, int i) {
  const auto from = static_cast<vnet::NodeId>(i % 5);
  const auto to = static_cast<vnet::NodeId>((i + 1) % 5);
  return plan.on_message(from, to, static_cast<std::uint32_t>(i),
                         static_cast<std::size_t>(64 + i));
}

TEST(FaultPlanTest, HealthyByDefault) {
  FaultPlan plan(42);
  for (int i = 0; i < 200; ++i) {
    const auto d = drive(plan, i);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay.count(), 0);
  }
  EXPECT_EQ(plan.decisions(), 200u);
  EXPECT_TRUE(plan.trace().empty());
}

TEST(FaultPlanTest, SameSeedSameScheduleIdenticalTrace) {
  FaultRates rates;
  rates.drop = 0.2;
  rates.duplicate = 0.15;
  rates.delay = 0.3;
  rates.max_extra_delay = std::chrono::microseconds(250);

  const auto run = [&] {
    FaultPlan plan(0xDEAD'BEEF, rates);
    plan.at(100, {FaultEventKind::kPartition, 1, 2});
    plan.at(200, {FaultEventKind::kHeal, 1, 2});
    plan.at(300, {FaultEventKind::kCrash, 3});
    plan.at(400, {FaultEventKind::kRestart, 3});
    for (int i = 0; i < 500; ++i) (void)drive(plan, i);
    return plan.trace();
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  // The trace must be non-trivial for the comparison to mean anything.
  EXPECT_GT(first.size(), 100u);
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultRates rates;
  rates.drop = 0.5;
  FaultPlan a(1, rates);
  FaultPlan b(2, rates);
  for (int i = 0; i < 200; ++i) {
    (void)drive(a, i);
    (void)drive(b, i);
  }
  EXPECT_NE(a.trace(), b.trace());
}

TEST(FaultPlanTest, DropRateOneDropsEverything) {
  FaultRates rates;
  rates.drop = 1.0;
  FaultPlan plan(7, rates);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(drive(plan, i).drop);
  EXPECT_EQ(plan.counters().drops, 50u);
}

TEST(FaultPlanTest, DelayFaultsAreBoundedAndCounted) {
  FaultRates rates;
  rates.delay = 1.0;
  rates.max_extra_delay = std::chrono::microseconds(100);
  FaultPlan plan(7, rates);
  for (int i = 0; i < 50; ++i) {
    const auto d = drive(plan, i);
    EXPECT_FALSE(d.drop);
    EXPECT_GE(d.extra_delay.count(), 0);
    EXPECT_LE(d.extra_delay, std::chrono::microseconds(100));
  }
  EXPECT_EQ(plan.counters().delays, 50u);
}

TEST(FaultPlanTest, PartitionIsSymmetricAndHealable) {
  FaultPlan plan(3);
  plan.partition(1, 2);
  EXPECT_TRUE(plan.on_message(1, 2, 0, 0).drop);
  EXPECT_TRUE(plan.on_message(2, 1, 0, 0).drop);
  EXPECT_FALSE(plan.on_message(1, 3, 0, 0).drop);  // other pairs unaffected
  EXPECT_FALSE(plan.on_message(1, 1, 0, 0).drop);  // loopback unaffected
  plan.heal(1, 2);
  EXPECT_FALSE(plan.on_message(1, 2, 0, 0).drop);
  const auto c = plan.counters();
  EXPECT_EQ(c.blocked, 2u);
  EXPECT_EQ(c.partitions, 1u);
  EXPECT_EQ(c.heals, 1u);
}

TEST(FaultPlanTest, CrashedNodeNeitherSendsNorReceives) {
  FaultPlan plan(3);
  plan.crash_node(4);
  EXPECT_TRUE(plan.node_crashed(4));
  EXPECT_TRUE(plan.on_message(4, 1, 0, 0).drop);
  EXPECT_TRUE(plan.on_message(1, 4, 0, 0).drop);
  EXPECT_FALSE(plan.on_message(1, 2, 0, 0).drop);
  plan.restart_node(4);
  EXPECT_FALSE(plan.node_crashed(4));
  EXPECT_FALSE(plan.on_message(4, 1, 0, 0).drop);
  const auto c = plan.counters();
  EXPECT_EQ(c.blocked, 2u);
  EXPECT_EQ(c.crashes, 1u);
  EXPECT_EQ(c.restarts, 1u);
}

TEST(FaultPlanTest, ScriptedCrashFiresAtDecisionIndex) {
  FaultPlan plan(9);
  plan.at(3, {FaultEventKind::kCrash, 1});
  // Decisions 0..2: node 1 still alive.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(plan.on_message(1, 2, 0, 0).drop);
  // Decision 3 onward: crashed.
  EXPECT_TRUE(plan.on_message(1, 2, 0, 0).drop);
  EXPECT_TRUE(plan.node_crashed(1));

  bool saw_crash = false;
  for (const auto& ev : plan.trace()) {
    if (ev.kind == FaultEventKind::kCrash) {
      saw_crash = true;
      EXPECT_EQ(ev.decision, 3u);
      EXPECT_EQ(ev.a, 1);
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(FaultPlanTest, TopologyChecksConsumeNoRandomness) {
  // Blocked messages must not advance the RNG stream: the post-partition
  // decisions of a run with a partitioned prefix must equal the decisions
  // of a run where those messages never happened at the same rate draws.
  FaultRates rates;
  rates.drop = 0.5;
  FaultPlan with_block(11, rates);
  FaultPlan without(11, rates);
  with_block.partition(8, 9);
  // 50 blocked messages still make decisions (and draw their four uniforms
  // each) — the contract is a FIXED draw count per on_message call.
  for (int i = 0; i < 50; ++i) (void)with_block.on_message(8, 9, 0, 0);
  for (int i = 0; i < 50; ++i) (void)without.on_message(0, 1, 0, 0);
  // Now both streams are at decision 50: identical subsequent decisions.
  std::vector<bool> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(with_block.on_message(2, 3, 0, 0).drop);
    b.push_back(without.on_message(2, 3, 0, 0).drop);
  }
  EXPECT_EQ(a, b);
}

TEST(FaultPlanTest, ExportsEventsToMetricsRegistry) {
  svc::MetricsRegistry metrics;
  FaultRates rates;
  rates.drop = 1.0;
  FaultPlan plan(5, rates);
  plan.set_metrics(&metrics);
  for (int i = 0; i < 10; ++i) (void)drive(plan, i);
  plan.crash_node(2);
  plan.restart_node(2);
  plan.partition(0, 1);

  const auto snap = metrics.snapshot();
  const auto* drops = snap.find(kEvFaultDrop);
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->calls, 10u);
  ASSERT_NE(snap.find(kEvNodeCrash), nullptr);
  EXPECT_EQ(snap.find(kEvNodeCrash)->calls, 1u);
  ASSERT_NE(snap.find(kEvNodeRestart), nullptr);
  ASSERT_NE(snap.find(kEvLinkPartition), nullptr);
}

TEST(FaultPlanTest, EventKindNamesAreStable) {
  EXPECT_STREQ(fault_event_kind_name(FaultEventKind::kDrop), "drop");
  EXPECT_STREQ(fault_event_kind_name(FaultEventKind::kCrash), "crash");
  EXPECT_STREQ(fault_event_kind_name(FaultEventKind::kPartition),
               "partition");
}

}  // namespace
}  // namespace dac::faults
