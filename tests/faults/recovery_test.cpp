// End-to-end recovery: compute-node death requeues the job onto a survivor,
// accelerator death is reclaimed server-side and survived by the session
// (AC_ReportLost + replacement AC_Get), a heartbeat flap (suspect -> up)
// never requeues, and a partition during pbs_dynget surfaces as a timeout
// error instead of a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>

#include "core/cluster.hpp"
#include "dacc/frontend.hpp"
#include "faults/fault_plan.hpp"
#include "svc/wire.hpp"
#include "util/bytes.hpp"
#include "util/queue.hpp"

namespace dac::faults {
namespace {

using namespace std::chrono_literals;

std::uint64_t event_count(const core::DacCluster& cluster,
                          torque::MsgType ev) {
  const auto snap = cluster.metrics_snapshot();
  const auto* stats = snap.find(torque::as_u32(ev));
  return stats == nullptr ? 0 : stats->calls;
}

TEST(FaultRecoveryTest, ComputeNodeCrashRequeuesJobOntoSurvivor) {
  auto cfg = core::DacClusterConfig::fast();
  cfg.compute_nodes = 2;
  cfg.accel_nodes = 1;
  cfg.timing.mom_heartbeat_interval = 10ms;
  cfg.timing.heartbeat_stale_factor = 10;
  cfg.timing.job_requeue_limit = 1;
  core::DacCluster cluster(cfg);

  // First attempt blocks until killed; the requeued attempt finishes at once.
  std::atomic<int> runs{0};
  util::BlockingQueue<int> started;
  cluster.register_program("victim", [&](core::JobContext& ctx) {
    if (runs.fetch_add(1) == 0) {
      (void)started.push(0);
      core::interruptible_sleep(ctx, 60'000ms);
    }
  });

  const auto id = cluster.submit_program("victim", 1, 0);
  ASSERT_TRUE(started.pop().has_value());

  auto running = cluster.client().stat_job(id);
  ASSERT_TRUE(running.has_value());
  const auto host = running->compute_hosts.front();
  cluster.fail_node(host == "cn0" ? 1 : 2);
  ASSERT_TRUE(
      cluster.await_node_liveness(host, torque::Liveness::kDown, 5000ms));

  // The requeued job completes on the surviving compute node.
  auto info = cluster.wait_job(id, 30'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, torque::JobState::kComplete);
  EXPECT_EQ(info->requeues, 1);
  EXPECT_EQ(info->exit_status, torque::kExitOk);
  EXPECT_NE(info->compute_hosts.front(), host);
  EXPECT_EQ(runs.load(), 2);
  EXPECT_GE(event_count(cluster, torque::MsgType::kEvJobRequeue), 1u);
  EXPECT_GE(event_count(cluster, torque::MsgType::kEvNodeDown), 1u);
}

TEST(FaultRecoveryTest, AcceleratorCrashIsReclaimedAndSessionRecovers) {
  auto cfg = core::DacClusterConfig::fast();
  cfg.compute_nodes = 1;
  cfg.accel_nodes = 2;
  cfg.timing.mom_heartbeat_interval = 10ms;
  cfg.timing.heartbeat_stale_factor = 10;
  cfg.ac_call_timeout = 300ms;  // dead AC => AcError(kNodeLost), not a hang
  core::DacCluster cluster(cfg);

  util::BlockingQueue<std::string> acquired;  // program -> test: granted host
  util::BlockingQueue<int> resume;            // test -> program: proceed
  std::atomic<bool> saw_node_lost{false};
  std::atomic<bool> recovered{false};
  std::string dead_host;

  cluster.register_program("failover", [&](core::JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    auto got = s.ac_get(1);
    if (!got.granted) return;
    const auto ac = got.handles.front();
    (void)s.ac_mem_alloc(ac, 1024);  // healthy accelerator answers
    (void)acquired.push(got.reply.hosts.front());

    (void)resume.pop();  // test killed the accelerator node
    try {
      (void)s.ac_mem_alloc(ac, 1024);
    } catch (const dacc::AcError& e) {
      saw_node_lost = e.status() == dacc::Status::kNodeLost;
    }
    s.ac_report_lost(got.client_id);

    (void)resume.pop();  // test observed the node going down
    auto replacement = s.ac_get(1);
    if (replacement.granted) {
      const auto host = replacement.reply.hosts.front();
      const auto r = replacement.handles.front();
      auto ptr = s.ac_mem_alloc(r, 64);
      s.ac_mem_free(r, ptr);
      recovered = host != dead_host;
      s.ac_free(replacement.client_id);
    }
    s.ac_finalize();
  });

  const auto id = cluster.submit_program("failover", 1, 0);
  auto host = acquired.pop();
  ASSERT_TRUE(host.has_value());
  dead_host = *host;
  cluster.fail_node(*host == "ac0" ? 2 : 3);  // 1 CN => ACs at index 2, 3
  ASSERT_TRUE(resume.push(0));
  ASSERT_TRUE(
      cluster.await_node_liveness(*host, torque::Liveness::kDown, 5000ms));
  ASSERT_TRUE(resume.push(0));

  auto info = cluster.wait_job(id, 30'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, torque::JobState::kComplete);
  EXPECT_EQ(info->requeues, 0);  // AC loss must not requeue the job
  EXPECT_TRUE(saw_node_lost.load());
  EXPECT_TRUE(recovered.load());
  // All accelerator slots are free again at the end.
  for (const auto& n : cluster.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST(FaultRecoveryTest, HeartbeatFlapSuspectsButNeverRequeues) {
  auto cfg = core::DacClusterConfig::fast();
  cfg.compute_nodes = 1;
  cfg.accel_nodes = 1;
  cfg.timing.mom_heartbeat_interval = 10ms;
  cfg.timing.heartbeat_suspect_factor = 3;
  cfg.timing.heartbeat_stale_factor = 100'000;  // never declared down
  cfg.timing.job_requeue_limit = 5;
  auto plan = std::make_shared<FaultPlan>(0xF1A9);
  cfg.fault_plan = plan;
  core::DacCluster cluster(cfg);

  util::BlockingQueue<int> started;
  cluster.register_program("flapper", [&](core::JobContext& ctx) {
    (void)started.push(0);
    core::interruptible_sleep(ctx, 500ms);
  });
  const auto id = cluster.submit_program("flapper", 1, 0);
  ASSERT_TRUE(started.pop().has_value());

  // Cut the head <-> cn0 link until the detector turns suspect, then heal.
  const auto head_id = cluster.vcluster().node(0).id();
  const auto cn_id = cluster.vcluster().node(1).id();
  plan->partition(head_id, cn_id);
  ASSERT_TRUE(
      cluster.await_node_liveness("cn0", torque::Liveness::kSuspect, 5000ms));
  plan->heal(head_id, cn_id);
  ASSERT_TRUE(
      cluster.await_node_liveness("cn0", torque::Liveness::kUp, 5000ms));

  auto info = cluster.wait_job(id, 30'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, torque::JobState::kComplete);
  EXPECT_EQ(info->requeues, 0);
  EXPECT_GE(event_count(cluster, torque::MsgType::kEvNodeSuspect), 1u);
  EXPECT_EQ(event_count(cluster, torque::MsgType::kEvNodeDown), 0u);
  EXPECT_EQ(event_count(cluster, torque::MsgType::kEvJobRequeue), 0u);
}

TEST(FaultRecoveryTest, PartitionDuringDyngetTimesOutInsteadOfHanging) {
  auto cfg = core::DacClusterConfig::fast();
  cfg.compute_nodes = 2;
  cfg.accel_nodes = 1;
  cfg.timing.mom_heartbeat_interval = 10ms;
  cfg.timing.heartbeat_suspect_factor = 100'000;  // flap only, never down
  cfg.timing.heartbeat_stale_factor = 200'000;
  auto plan = std::make_shared<FaultPlan>(0xF1A9);
  cfg.fault_plan = plan;
  core::DacCluster cluster(cfg);

  // A running job to hang dynamic requests onto.
  util::ByteWriter args;
  args.put<std::uint64_t>(30'000);
  const auto id = cluster.submit_program(core::kSleepProgram, 1, 0,
                                         std::move(args).take());
  ASSERT_TRUE(cluster.client()
                  .wait_for_state(id, torque::JobState::kRunning, 10'000ms)
                  .has_value());

  // Issue pbs_dynget from the compute node NOT running the job, with its
  // link to the head node cut: the call must fail by deadline, not hang.
  auto running = cluster.client().stat_job(id);
  ASSERT_TRUE(running.has_value());
  const std::size_t client_idx =
      running->compute_hosts.front() == "cn0" ? 2 : 1;
  auto& client_node = cluster.vcluster().node(client_idx);
  plan->partition(cluster.vcluster().node(0).id(), client_node.id());

  torque::Ifl ifl(client_node, cluster.server_address());
  EXPECT_THROW((void)ifl.dynget(id, 1, 1, torque::NodeKind::kAccelerator,
                                1000ms),
               svc::DeadlineError);

  // After the heal the same request goes through and is granted.
  plan->heal(cluster.vcluster().node(0).id(), client_node.id());
  auto reply = ifl.dynget(id, 1, 1, torque::NodeKind::kAccelerator, 10'000ms);
  EXPECT_TRUE(reply.granted);
  if (reply.granted) ifl.dynfree(id, reply.client_id);
  cluster.client().delete_job(id);
}

}  // namespace
}  // namespace dac::faults
