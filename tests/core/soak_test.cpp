// Full-stack soak test: a randomized mixed workload — static-accelerator
// jobs, phase-dynamic jobs, malleable jobs, plain CPU jobs — run end to end
// on one cluster. Asserts every job completes cleanly and every slot is
// free afterwards. Seeded and parameterized so multiple schedules are
// exercised.
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "simtime/clock.hpp"
#include "core/cluster.hpp"

namespace dac::core {
namespace {

using namespace std::chrono_literals;

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, MixedWorkloadRunsClean) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 3;
  config.accel_nodes = 4;
  config.policy = maui::Policy::kBackfill;
  // This test asserts workload completion under heavy CPU oversubscription
  // (ctest -j runs many virtual clusters at once): a starved mom thread must
  // not get its node declared down mid-job, and a starved workload must not
  // be walltime-killed. Down detection is covered by fault_test, walltime
  // kills by walltime_test.
  config.timing.heartbeat_stale_factor = 2000;
  config.enforce_walltime = false;
  DacCluster cluster(config);

  std::atomic<int> dyn_grants{0};
  std::atomic<int> dyn_rejections{0};
  std::atomic<int> failures{0};

  cluster.register_program("soak_static", [&](JobContext& ctx) {
    try {
      auto& s = ctx.session();
      auto handles = s.ac_init();
      for (const auto ac : handles) {
        const auto p = s.ac_mem_alloc(ac, 1024);
        s.ac_mem_free(ac, p);
      }
      s.ac_finalize();
    } catch (const std::exception&) {
      ++failures;
    }
  });

  cluster.register_program("soak_dynamic", [&](JobContext& ctx) {
    try {
      auto& s = ctx.session();
      (void)s.ac_init();
      auto got = s.ac_get(2, /*min_count=*/1);
      if (got.granted) {
        ++dyn_grants;
        const auto p = s.ac_mem_alloc(got.handles[0], 512);
        s.ac_mem_free(got.handles[0], p);
        s.ac_free(got.client_id);
      } else {
        ++dyn_rejections;
      }
      s.ac_finalize();
    } catch (const std::exception&) {
      ++failures;
    }
  });

  cluster.register_program("soak_malleable", [&](JobContext& ctx) {
    try {
      auto grant = ctx.grow_compute(1, /*min_count=*/1);
      if (grant.granted) {
        interruptible_sleep(ctx, 5ms);
        ctx.release_compute(grant.client_id);
      }
    } catch (const std::exception&) {
      ++failures;
    }
  });

  std::mt19937_64 rng(GetParam());
  std::vector<torque::JobId> ids;
  for (int i = 0; i < 18; ++i) {
    switch (rng() % 4) {
      case 0:
        ids.push_back(cluster.submit_program("soak_static", 1,
                                             1 + static_cast<int>(rng() % 2)));
        break;
      case 1:
        ids.push_back(cluster.submit_program("soak_dynamic", 1, 0));
        break;
      case 2:
        ids.push_back(cluster.submit_program("soak_malleable", 1, 0));
        break;
      case 3: {
        util::ByteWriter w;
        w.put<std::uint64_t>(5 + rng() % 20);
        ids.push_back(cluster.submit_program(kSleepProgram, 1,
                                             0, std::move(w).take()));
        break;
      }
    }
    if (rng() % 2 == 0) dac::simtime::sleep_for(2ms);  // NOLINT-DACSCHED(sleep-poll)
  }

  for (const auto id : ids) {
    auto info = cluster.wait_job(id, 60'000ms);
    ASSERT_TRUE(info.has_value()) << "job " << id << " did not complete";
    EXPECT_EQ(info->exit_status, torque::kExitOk) << "job " << id;
  }
  EXPECT_EQ(failures, 0);
  // The pool must be fully recovered.
  for (const auto& n : cluster.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
    EXPECT_TRUE(n.up) << n.hostname;
  }
  // Sanity: the mix actually exercised the dynamic path.
  EXPECT_GT(dyn_grants + dyn_rejections + 1, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace dac::core
