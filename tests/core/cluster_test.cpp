// End-to-end tests of the full DAC batch system: boot a virtual cluster,
// submit jobs through the IFL, run programs that exercise static and dynamic
// accelerator allocation and the offload computation API.
#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace dac::core {
namespace {

using namespace std::chrono_literals;

class DacClusterTest : public ::testing::Test {
 protected:
  DacClusterTest() : cluster_(DacClusterConfig::fast()) {}
  DacCluster cluster_;
};

TEST_F(DacClusterTest, BootRegistersAllNodes) {
  auto nodes = cluster_.client().stat_nodes();
  ASSERT_EQ(nodes.size(), 7u);  // 3 compute + 4 accelerator
  int compute = 0;
  int accel = 0;
  for (const auto& n : nodes) {
    (n.kind == torque::NodeKind::kCompute ? compute : accel) += 1;
  }
  EXPECT_EQ(compute, 3);
  EXPECT_EQ(accel, 4);
}

TEST_F(DacClusterTest, NoopJobCompletes) {
  const auto id = cluster_.submit_program(kNoopProgram, 1, 0);
  auto info = cluster_.wait_job(id, 10'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, torque::JobState::kComplete);
  EXPECT_EQ(info->compute_hosts.size(), 1u);
  EXPECT_TRUE(info->accel_hosts.empty());
}

TEST_F(DacClusterTest, EmptyProgramJobShortCircuits) {
  torque::JobSpec spec;
  spec.name = "load-only";
  spec.resources.nodes = 1;
  const auto id = cluster_.submit(spec);
  auto info = cluster_.wait_job(id, 10'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, torque::JobState::kComplete);
}

TEST_F(DacClusterTest, StaticAccelerators) {
  std::atomic<int> handles_seen{-1};
  std::atomic<double> init_total{-1.0};
  cluster_.register_program("static_test", [&](JobContext& ctx) {
    rmlib::InitTiming t;
    auto handles = ctx.session().ac_init(&t);
    handles_seen = static_cast<int>(handles.size());
    init_total = t.total_s();
    ctx.session().ac_finalize();
  });
  const auto id = cluster_.submit_program("static_test", 1, 3);
  auto info = cluster_.wait_job(id, 15'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(handles_seen, 3);
  EXPECT_GT(init_total.load(), 0.0);
  EXPECT_EQ(info->accel_hosts.size(), 3u);

  // All resources must be free again after completion.
  for (const auto& n : cluster_.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST_F(DacClusterTest, OffloadVectorAdd) {
  std::atomic<bool> ok{false};
  cluster_.register_program("offload_test", [&](JobContext& ctx) {
    auto& s = ctx.session();
    auto handles = s.ac_init();
    ASSERT_EQ(handles.size(), 1u);
    const auto ac = handles[0];

    constexpr std::uint64_t kN = 1024;
    std::vector<double> a(kN), b(kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
      a[i] = static_cast<double>(i);
      b[i] = 2.0 * static_cast<double>(i);
    }
    const auto bytes = kN * sizeof(double);
    const auto da = s.ac_mem_alloc(ac, bytes);
    const auto db = s.ac_mem_alloc(ac, bytes);
    const auto dc = s.ac_mem_alloc(ac, bytes);
    s.ac_memcpy_h2d(ac, da, std::as_bytes(std::span(a)));
    s.ac_memcpy_h2d(ac, db, std::as_bytes(std::span(b)));

    const auto k = s.ac_kernel_create(ac, "vector_add");
    util::ByteWriter args;
    args.put<std::uint64_t>(dc);
    args.put<std::uint64_t>(da);
    args.put<std::uint64_t>(db);
    args.put<std::uint64_t>(kN);
    s.ac_kernel_set_args(ac, k, std::move(args).take());
    s.ac_kernel_run(ac, k, {256, 1, 1}, {4, 1, 1});

    auto out = s.ac_memcpy_d2h(ac, dc, bytes);
    const auto* c = reinterpret_cast<const double*>(out.data());
    bool good = out.size() == bytes;
    for (std::uint64_t i = 0; good && i < kN; i += 17) {
      good = c[i] == 3.0 * static_cast<double>(i);
    }
    s.ac_mem_free(ac, da);
    s.ac_mem_free(ac, db);
    s.ac_mem_free(ac, dc);
    s.ac_finalize();
    ok = good;
  });
  const auto id = cluster_.submit_program("offload_test", 1, 1);
  ASSERT_TRUE(cluster_.wait_job(id, 15'000ms).has_value());
  EXPECT_TRUE(ok);
}

TEST_F(DacClusterTest, DynamicGetGrowsAndFrees) {
  std::atomic<bool> ok{false};
  cluster_.register_program("dyn_test", [&](JobContext& ctx) {
    auto& s = ctx.session();
    auto statics = s.ac_init();
    ASSERT_EQ(statics.size(), 1u);

    auto got = s.ac_get(2);
    ASSERT_TRUE(got.granted);
    ASSERT_EQ(got.handles.size(), 2u);
    // Paper rank layout: static 1..x, dynamic x+1..x+y.
    EXPECT_EQ(got.handles[0].rank, 2);
    EXPECT_EQ(got.handles[1].rank, 3);
    EXPECT_EQ(s.accelerator_count(), 3);
    EXPECT_GT(got.batch_s, 0.0);
    EXPECT_GT(got.mpi_s, 0.0);

    // The new accelerators must actually serve compute requests.
    const auto info = s.ac_device_info(got.handles[1]);
    EXPECT_FALSE(info.name.empty());

    s.ac_free(got.client_id);
    EXPECT_EQ(s.accelerator_count(), 1);
    // The statically allocated accelerator still works after the release.
    (void)s.ac_device_info(statics[0]);
    s.ac_finalize();
    ok = true;
  });
  const auto id = cluster_.submit_program("dyn_test", 1, 1);
  ASSERT_TRUE(cluster_.wait_job(id, 20'000ms).has_value());
  EXPECT_TRUE(ok);

  for (const auto& n : cluster_.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST_F(DacClusterTest, DynamicRequestRejectedWhenInsufficient) {
  std::atomic<int> outcome{-1};
  cluster_.register_program("reject_test", [&](JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    // Only 4 accelerator nodes exist and 1 is held statically.
    auto got = s.ac_get(10);
    outcome = got.granted ? 1 : 0;
    // The application continues with its existing set (paper §II-B).
    EXPECT_EQ(s.accelerator_count(), 1);
    s.ac_finalize();
  });
  const auto id = cluster_.submit_program("reject_test", 1, 1);
  ASSERT_TRUE(cluster_.wait_job(id, 15'000ms).has_value());
  EXPECT_EQ(outcome, 0);
}

TEST_F(DacClusterTest, MultiComputeNodeJob) {
  std::atomic<int> ranks_sum{0};
  std::atomic<int> per_cn_accels{-1};
  cluster_.register_program("multi_cn", [&](JobContext& ctx) {
    ranks_sum += ctx.rank() + 1;
    // Each compute node gets its own accelerator set and communicator
    // (paper §III-C).
    auto handles = ctx.session().ac_init();
    if (ctx.rank() == 0) per_cn_accels = static_cast<int>(handles.size());
    (void)ctx.mpi().allreduce(ctx.world(), std::int64_t{1},
                              minimpi::ReduceOp::kSum);
    ctx.session().ac_finalize();
  });
  const auto id = cluster_.submit_program("multi_cn", 2, 2);
  auto info = cluster_.wait_job(id, 20'000ms);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(ranks_sum, 1 + 2);
  EXPECT_EQ(per_cn_accels, 2);
  EXPECT_EQ(info->compute_hosts.size(), 2u);
  EXPECT_EQ(info->accel_hosts.size(), 4u);
}

TEST_F(DacClusterTest, JobsQueueWhenResourcesBusy) {
  // 3 compute nodes; submit 4 single-node jobs that hold their node briefly.
  std::vector<torque::JobId> ids;
  for (int i = 0; i < 4; ++i) {
    util::ByteWriter w;
    w.put<std::uint64_t>(30);  // sleep 30 ms
    ids.push_back(cluster_.submit_program(kSleepProgram, 1, 0,
                                          std::move(w).take()));
  }
  for (const auto id : ids) {
    auto info = cluster_.wait_job(id, 20'000ms);
    ASSERT_TRUE(info.has_value()) << "job " << id;
  }
}

TEST_F(DacClusterTest, SchedulerStatsAdvance) {
  const auto before = cluster_.scheduler_stats();
  const auto id = cluster_.submit_program(kNoopProgram, 1, 0);
  ASSERT_TRUE(cluster_.wait_job(id, 10'000ms).has_value());
  const auto after = cluster_.scheduler_stats();
  EXPECT_GT(after.cycles, before.cycles);
  EXPECT_GT(after.jobs_started, before.jobs_started);
}

}  // namespace
}  // namespace dac::core
