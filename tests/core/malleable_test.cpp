// Malleability tests (the §V generalization): dynamic compute-node growth
// through the same batch-system machinery as accelerators, worker spawning,
// and set-scoped cleanup on release.
#include <gtest/gtest.h>

#include <atomic>

#include "simtime/clock.hpp"
#include "core/cluster.hpp"

namespace dac::core {
namespace {

using namespace std::chrono_literals;

class MalleableTest : public ::testing::Test {
 protected:
  MalleableTest() : cluster_([] {
    auto c = DacClusterConfig::fast();
    c.compute_nodes = 4;
    c.accel_nodes = 2;
    return c;
  }()) {}

  void run_job(const std::string& name, JobProgram body, int nodes = 1) {
    cluster_.register_program(name, std::move(body));
    const auto id = cluster_.submit_program(name, nodes, 0);
    ASSERT_TRUE(cluster_.wait_job(id, 30'000ms).has_value());
  }

  int used_slots() {
    int used = 0;
    for (const auto& n : cluster_.client().stat_nodes()) used += n.used;
    return used;
  }

  DacCluster cluster_;
};

TEST_F(MalleableTest, GrowGrantsFreshNodes) {
  std::atomic<bool> ok{false};
  run_job("grow", [&](JobContext& ctx) {
    auto grant = ctx.grow_compute(2);
    ASSERT_TRUE(grant.granted);
    ASSERT_EQ(grant.hosts.size(), 2u);
    // The grant must not include the job's own compute node.
    const auto own = ctx.info().compute_hosts.front().hostname;
    for (const auto& h : grant.hosts) EXPECT_NE(h, own);
    ctx.release_compute(grant.client_id);
    ok = true;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(used_slots(), 0);
}

TEST_F(MalleableTest, GrowRejectedWhenPoolExhausted) {
  std::atomic<int> outcome{-1};
  run_job("grow_fail", [&](JobContext& ctx) {
    // Only 3 other compute nodes exist.
    auto grant = ctx.grow_compute(5);
    outcome = grant.granted ? 1 : 0;
  });
  EXPECT_EQ(outcome, 0);
}

TEST_F(MalleableTest, PartialComputeGrant) {
  std::atomic<int> got{-1};
  run_job("grow_partial", [&](JobContext& ctx) {
    auto grant = ctx.grow_compute(5, /*min_count=*/1);
    got = grant.granted ? static_cast<int>(grant.hosts.size()) : 0;
    if (grant.granted) ctx.release_compute(grant.client_id);
  });
  EXPECT_EQ(got, 3);  // the three other compute nodes
}

TEST_F(MalleableTest, SpawnedWorkersCompute) {
  std::atomic<double> result{0.0};
  cluster_.runtime().register_executable(
      "test.worker", [](minimpi::Proc& p, const util::Bytes&) {
        auto& parent = *p.parent_comm();
        auto task = p.recv(parent, 0, 1);
        util::ByteReader r(task.data);
        const double x = r.get<double>();
        util::ByteWriter w;
        w.put<double>(x * x);
        p.send(parent, 0, 2, std::move(w).take());
        p.disconnect(parent);
      });
  run_job("spawn", [&](JobContext& ctx) {
    auto grant = ctx.grow_compute(2);
    ASSERT_TRUE(grant.granted);
    auto inter = ctx.spawn_workers("test.worker", {}, grant.nodes,
                                   ctx.mpi().self(), 0, grant.client_id);
    for (int w = 0; w < 2; ++w) {
      util::ByteWriter msg;
      msg.put<double>(static_cast<double>(w + 3));
      ctx.mpi().send(inter, w, 1, std::move(msg).take());
    }
    double sum = 0.0;
    for (int w = 0; w < 2; ++w) {
      auto r = ctx.mpi().recv(inter, minimpi::kAnySource, 2);
      util::ByteReader rd(r.data);
      sum += rd.get<double>();
    }
    ctx.mpi().disconnect(inter);
    result = sum;
    ctx.release_compute(grant.client_id);
  });
  EXPECT_DOUBLE_EQ(result, 9.0 + 16.0);
  EXPECT_EQ(used_slots(), 0);
}

TEST_F(MalleableTest, ReleaseKillsLeftoverWorkers) {
  // A worker that never exits on its own must be reaped by the DISJOIN that
  // the release triggers — without killing the job script itself.
  std::atomic<bool> job_survived{false};
  cluster_.runtime().register_executable(
      "test.stuck_worker", [](minimpi::Proc& p, const util::Bytes&) {
        // Blocks forever; only a kill ends it.
        (void)p.recv(p.world(), minimpi::kAnySource, 99);
      });
  run_job("leftover", [&](JobContext& ctx) {
    auto grant = ctx.grow_compute(1);
    ASSERT_TRUE(grant.granted);
    (void)ctx.spawn_workers("test.stuck_worker", {}, grant.nodes,
                            ctx.mpi().self(), 0, grant.client_id);
    ctx.release_compute(grant.client_id);
    // Give the DISJOIN a moment, then prove the job itself is still alive.
    dac::simtime::sleep_for(20ms);  // NOLINT-DACSCHED(sleep-poll)
    job_survived = true;
  });
  EXPECT_TRUE(job_survived);
  // All slots free: the stuck worker was killed with its set.
  const auto deadline = dac::simtime::now() + 5s;
  while (used_slots() != 0 && dac::simtime::now() < deadline) {
    dac::simtime::sleep_for(5ms);  // NOLINT-DACSCHED(sleep-poll)
  }
  EXPECT_EQ(used_slots(), 0);
}

TEST_F(MalleableTest, AcceleratorsAndComputeGrowthCompose) {
  std::atomic<bool> ok{false};
  run_job("both", [&](JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    auto acs = s.ac_get(1);
    ASSERT_TRUE(acs.granted);
    auto cns = ctx.grow_compute(1);
    ASSERT_TRUE(cns.granted);
    // Both kinds of resources held simultaneously; release in any order
    // across kinds.
    ctx.release_compute(cns.client_id);
    s.ac_free(acs.client_id);
    s.ac_finalize();
    ok = true;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(used_slots(), 0);
}

}  // namespace
}  // namespace dac::core
