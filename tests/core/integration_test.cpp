// Deep integration scenarios combining several features in one job: static
// sets plus per-CN dynamic growth in a multi-node job, interleaved offload
// traffic, and the collective/individual paths mixed across phases.
#include <gtest/gtest.h>

#include <atomic>

#include "core/cli.hpp"
#include "core/cluster.hpp"

namespace dac::core {
namespace {

using namespace std::chrono_literals;

TEST(Integration, MultiCnStaticPlusIndependentDynamicGrowth) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.accel_nodes = 6;
  DacCluster cluster(config);

  std::atomic<int> ok{0};
  cluster.register_program("deep", [&](JobContext& ctx) {
    auto& s = ctx.session();
    // Each CN: 1 static accelerator.
    auto statics = s.ac_init();
    ASSERT_EQ(statics.size(), 1u);

    // Rank 0 grows by 2, rank 1 by 1 — independent requests from the same
    // job serialize at the server but both succeed (pool: 6 - 2 static).
    const int want = ctx.rank() == 0 ? 2 : 1;
    auto got = s.ac_get(want);
    ASSERT_TRUE(got.granted);
    ASSERT_EQ(static_cast<int>(got.handles.size()), want);

    // Offload to every accelerator this CN holds (static + dynamic).
    for (const auto ac : s.handles()) {
      const auto p = s.ac_mem_alloc(ac, 256);
      s.ac_mem_free(ac, p);
    }

    // Synchronize the job, then release and verify the static one works.
    ctx.mpi().barrier(ctx.world());
    s.ac_free(got.client_id);
    const auto p = s.ac_mem_alloc(statics[0], 128);
    s.ac_mem_free(statics[0], p);
    s.ac_finalize();
    ++ok;
  });
  const auto id = cluster.submit_program("deep", 2, 1);
  ASSERT_TRUE(cluster.wait_job(id, 60'000ms).has_value());
  EXPECT_EQ(ok, 2);
  for (const auto& n : cluster.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST(Integration, IndividualThenCollectivePhases) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.accel_nodes = 4;
  DacCluster cluster(config);

  std::atomic<int> ok{0};
  cluster.register_program("phases", [&](JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();

    // Phase 1: rank 0 alone grows and shrinks.
    if (ctx.rank() == 0) {
      auto solo = s.ac_get(1);
      ASSERT_TRUE(solo.granted);
      s.ac_free(solo.client_id);
    }
    ctx.mpi().barrier(ctx.world());

    // Phase 2: a collective request across both ranks.
    auto coll = s.ac_get_collective(ctx.world(), 2);
    ASSERT_TRUE(coll.granted);
    EXPECT_EQ(coll.handles.size(), 2u);
    s.ac_free_collective(ctx.world(), coll.client_id);

    s.ac_finalize();
    ++ok;
  });
  const auto id = cluster.submit_program("phases", 2, 0);
  ASSERT_TRUE(cluster.wait_job(id, 60'000ms).has_value());
  EXPECT_EQ(ok, 2);
}

TEST(Integration, TwoJobsShareThePoolFairly) {
  auto config = DacClusterConfig::fast();
  config.compute_nodes = 2;
  config.accel_nodes = 4;
  DacCluster cluster(config);

  std::atomic<int> completed{0};
  cluster.register_program("churner", [&](JobContext& ctx) {
    auto& s = ctx.session();
    (void)s.ac_init();
    // Repeatedly grab and release; with two jobs churning, rejections are
    // possible and must be harmless.
    for (int round = 0; round < 6; ++round) {
      auto got = s.ac_get(2, /*min_count=*/1);
      if (got.granted) {
        const auto p = s.ac_mem_alloc(got.handles[0], 64);
        s.ac_mem_free(got.handles[0], p);
        s.ac_free(got.client_id);
      }
    }
    s.ac_finalize();
    ++completed;
  });
  const auto a = cluster.submit_program("churner", 1, 0);
  const auto b = cluster.submit_program("churner", 1, 0);
  ASSERT_TRUE(cluster.wait_job(a, 60'000ms).has_value());
  ASSERT_TRUE(cluster.wait_job(b, 60'000ms).has_value());
  EXPECT_EQ(completed, 2);
  for (const auto& n : cluster.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST(Integration, QstatRendersLiveSystem) {
  auto config = DacClusterConfig::fast();
  DacCluster cluster(config);
  const auto id = cluster.submit_program(kNoopProgram, 1, 1);
  ASSERT_TRUE(cluster.wait_job(id, 30'000ms).has_value());
  const auto qstat = render_qstat(cluster.client().stat_jobs());
  EXPECT_NE(qstat.find(core::kNoopProgram), std::string::npos);
  const auto nodes = render_pbsnodes(cluster.client().stat_nodes());
  EXPECT_NE(nodes.find("cn0"), std::string::npos);
  EXPECT_NE(nodes.find("accelerator"), std::string::npos);
}

}  // namespace
}  // namespace dac::core
