#include "core/cli.hpp"

#include <gtest/gtest.h>

namespace dac::core {
namespace {

torque::JobInfo make_job(torque::JobId id, torque::JobState state) {
  torque::JobInfo j;
  j.id = id;
  j.spec.name = "myjob";
  j.spec.owner = "alice";
  j.spec.resources.nodes = 2;
  j.state = state;
  j.submit_time = 1.0;
  j.start_time = 2.5;
  j.end_time = 4.0;
  j.accel_hosts = {"ac0", "ac1"};
  j.dyn_accel_hosts = {"ac2"};
  return j;
}

TEST(Cli, QstatContainsJobFields) {
  const auto s = render_qstat({make_job(7, torque::JobState::kComplete)});
  EXPECT_NE(s.find("Job ID"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("myjob"), std::string::npos);
  EXPECT_NE(s.find("alice"), std::string::npos);
  EXPECT_NE(s.find("C"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);  // queue wait
  // 2 static + 1 dynamic accelerators.
  EXPECT_NE(s.find(" 3"), std::string::npos);
}

TEST(Cli, QstatUnstartedJobShowsDashes) {
  auto j = make_job(1, torque::JobState::kQueued);
  j.start_time = -1.0;
  j.end_time = -1.0;
  const auto s = render_qstat({j});
  EXPECT_NE(s.find("Q"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);
}

TEST(Cli, QstatEmptyHasOnlyHeader) {
  const auto s = render_qstat({});
  EXPECT_NE(s.find("Job ID"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(Cli, QstatTruncatesLongNames) {
  auto j = make_job(1, torque::JobState::kRunning);
  j.spec.name = std::string(64, 'x');
  const auto s = render_qstat({j});
  EXPECT_EQ(s.find(std::string(16, 'x')), std::string::npos);
}

TEST(Cli, PbsnodesShowsKindsAndState) {
  torque::NodeStatus cn;
  cn.hostname = "cn0";
  cn.kind = torque::NodeKind::kCompute;
  cn.np = 8;
  cn.used = 3;
  cn.jobs = {4, 5};
  torque::NodeStatus ac;
  ac.hostname = "ac0";
  ac.kind = torque::NodeKind::kAccelerator;
  ac.np = 1;
  ac.up = false;
  const auto s = render_pbsnodes({cn, ac});
  EXPECT_NE(s.find("compute"), std::string::npos);
  EXPECT_NE(s.find("accelerator"), std::string::npos);
  EXPECT_NE(s.find("3/8"), std::string::npos);
  EXPECT_NE(s.find("4,5"), std::string::npos);
  EXPECT_NE(s.find("down"), std::string::npos);
  EXPECT_NE(s.find("up"), std::string::npos);
}

TEST(Cli, PbsnodesIdleNodeShowsDash) {
  torque::NodeStatus n;
  n.hostname = "cn0";
  const auto s = render_pbsnodes({n});
  EXPECT_NE(s.find("-"), std::string::npos);
}

}  // namespace
}  // namespace dac::core
