// JobContext tests: the environment a job program sees — launch info, PBS
// environment variables, per-rank identity, MPI world, and the IFL client
// from inside a job.
#include "core/job_context.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include "util/sync.hpp"

#include "core/cluster.hpp"

namespace dac::core {
namespace {

using namespace std::chrono_literals;

class JobContextTest : public ::testing::Test {
 protected:
  JobContextTest() : cluster_([] {
    auto c = DacClusterConfig::fast();
    c.compute_nodes = 2;
    c.accel_nodes = 2;
    return c;
  }()) {}

  DacCluster cluster_;
};

TEST_F(JobContextTest, LaunchInfoDescribesTheJob) {
  // The program may start before submit_program() even returns, so it must
  // not read `submitted` — record what it saw and compare afterwards.
  dac::Mutex mu{"test.mu"};
  torque::JobLaunchInfo seen;
  cluster_.register_program("info", [&](JobContext& ctx) {
    dac::ScopedLock lock(mu);
    seen = ctx.info();
  });
  const auto submitted = cluster_.submit_program("info", 1, 2);
  ASSERT_TRUE(cluster_.wait_job(submitted, 30'000ms).has_value());
  dac::ScopedLock lock(mu);
  EXPECT_EQ(seen.job, submitted);
  EXPECT_EQ(seen.nodes, 1);
  EXPECT_EQ(seen.acpn, 2);
  EXPECT_EQ(seen.compute_hosts.size(), 1u);
  EXPECT_EQ(seen.accel_hosts.size(), 2u);
  EXPECT_EQ(seen.program, "info");
}

TEST_F(JobContextTest, PbsJobidEnvironmentVariable) {
  dac::Mutex mu{"test.mu"};
  std::string seen;
  cluster_.register_program("env", [&](JobContext& ctx) {
    const auto v = ctx.mpi().process().getenv("PBS_JOBID");
    dac::ScopedLock lock(mu);
    seen = v.value_or("");
  });
  const auto submitted = cluster_.submit_program("env", 1, 0);
  ASSERT_TRUE(cluster_.wait_job(submitted, 30'000ms).has_value());
  dac::ScopedLock lock(mu);
  EXPECT_EQ(seen, std::to_string(submitted));
}

TEST_F(JobContextTest, RanksMatchComputeNodeOrder) {
  dac::Mutex mu{"test.mu"};
  std::map<int, std::string> rank_to_host;
  cluster_.register_program("ranks", [&](JobContext& ctx) {
    dac::ScopedLock lock(mu);
    rank_to_host[ctx.rank()] =
        ctx.info().compute_hosts[static_cast<std::size_t>(ctx.rank())]
            .hostname;
    EXPECT_EQ(ctx.num_nodes(), 2);
  });
  const auto id = cluster_.submit_program("ranks", 2, 0);
  ASSERT_TRUE(cluster_.wait_job(id, 30'000ms).has_value());
  ASSERT_EQ(rank_to_host.size(), 2u);
  EXPECT_NE(rank_to_host[0], rank_to_host[1]);
}

TEST_F(JobContextTest, IflUsableInsideJob) {
  std::atomic<bool> ok{false};
  cluster_.register_program("qstat_inside", [&](JobContext& ctx) {
    auto self = ctx.ifl().stat_job(ctx.info().job);
    ok = self.has_value() && self->state == torque::JobState::kRunning;
  });
  const auto submitted = cluster_.submit_program("qstat_inside", 1, 0);
  ASSERT_TRUE(cluster_.wait_job(submitted, 30'000ms).has_value());
  EXPECT_TRUE(ok);
}

TEST_F(JobContextTest, WorldCollectivesAcrossComputeNodes) {
  std::atomic<std::int64_t> seen{0};
  cluster_.register_program("world", [&](JobContext& ctx) {
    const auto sum = ctx.mpi().allreduce(
        ctx.world(), static_cast<std::int64_t>(ctx.rank() + 1),
        minimpi::ReduceOp::kSum);
    if (ctx.rank() == 0) seen = sum;
  });
  const auto id = cluster_.submit_program("world", 2, 0);
  ASSERT_TRUE(cluster_.wait_job(id, 30'000ms).has_value());
  EXPECT_EQ(seen, 3);
}

TEST_F(JobContextTest, UnknownProgramCompletesWithoutCrash) {
  torque::JobSpec spec;
  spec.name = "ghost";
  spec.program = "no_such_program";
  spec.resources.nodes = 1;
  const auto id = cluster_.submit(spec);
  auto info = cluster_.wait_job(id, 30'000ms);
  ASSERT_TRUE(info.has_value());  // wrapper logs the error and completes
  for (const auto& n : cluster_.client().stat_nodes()) {
    EXPECT_EQ(n.used, 0) << n.hostname;
  }
}

TEST_F(JobContextTest, InterruptibleSleepThrowsOnKill) {
  std::atomic<bool> threw{false};
  dac::Latch started{1};
  cluster_.register_program("sleeper", [&](JobContext& ctx) {
    started.count_down();
    try {
      interruptible_sleep(ctx, 30'000ms);
    } catch (const util::StoppedError&) {
      threw = true;
      throw;  // propagate like a killed process would
    }
  });
  const auto id = cluster_.submit_program("sleeper", 1, 0);
  started.wait();
  cluster_.client().delete_job(id);
  // qdel kills the tasks; the sleep must notice promptly.
  const auto deadline = dac::simtime::now() + 5s;
  while (!threw && dac::simtime::now() < deadline) {
    dac::simtime::sleep_for(2ms);  // NOLINT-DACSCHED(sleep-poll)
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace dac::core
