// Configuration profiles: the fast and paper-testbed profiles must stay
// internally consistent (these values calibrate every benchmark).
#include "core/config.hpp"

#include <gtest/gtest.h>

namespace dac::core {
namespace {

TEST(Config, FastProfileIsQuick) {
  const auto c = DacClusterConfig::fast();
  EXPECT_LE(c.timing.server_service_cost.count(), 1000);
  EXPECT_LE(c.timing.sched_job_eval_cost.count(), 1000);
  EXPECT_EQ(c.device.time_scale, 0.0);
  EXPECT_EQ(c.total_nodes(), 1 + c.compute_nodes + c.accel_nodes);
}

TEST(Config, PaperTestbedMatchesPaperTopology) {
  const auto c = DacClusterConfig::paper_testbed();
  // 8 nodes: 1 head + 1 CN + 6 ACs (the Figure 7 setup).
  EXPECT_EQ(c.total_nodes(), 8u);
  EXPECT_EQ(c.compute_nodes, 1u);
  EXPECT_EQ(c.accel_nodes, 6u);
}

TEST(Config, PaperTestbedCustomSplit) {
  const auto c = DacClusterConfig::paper_testbed(3, 4);
  EXPECT_EQ(c.total_nodes(), 8u);  // still the paper's 8 nodes
  EXPECT_EQ(c.compute_nodes, 3u);
}

TEST(Config, CalibratedTimingOrdering) {
  const auto t = torque::BatchTiming::calibrated();
  // The calibration relies on these orderings (see DESIGN.md):
  // static daemons stagger (Fig 7a growth) and start slower than spawned
  // ones; per-request dynamic work exceeds a single job evaluation.
  EXPECT_GT(t.static_daemon_start_delay.count(), 0);
  EXPECT_GT(t.static_daemon_start_stagger.count(), 0);
  EXPECT_GT(t.sched_dyn_base_cost, t.sched_job_eval_cost);
  EXPECT_GT(t.mom_heartbeat_interval.count(), 0);
  EXPECT_GT(t.heartbeat_stale_factor, 1);
}

TEST(Config, DynamicFirstDefaultsOnLikeThePaper) {
  EXPECT_TRUE(DacClusterConfig::fast().dynamic_first);
  EXPECT_TRUE(DacClusterConfig::paper_testbed().dynamic_first);
  // The fairshare cap is off by default (paper behaviour).
  EXPECT_GE(DacClusterConfig::fast().dyn_owner_pool_cap, 1.0);
}

}  // namespace
}  // namespace dac::core
