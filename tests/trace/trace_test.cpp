// Unit tests of the causal tracing layer: span nesting, context
// propagation, the inert no-recorder path, the virtual clock, and both
// exporters (Chrome JSON and the normalized golden dump).
#include <gtest/gtest.h>

#include <thread>

#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace dac::trace {
namespace {

TEST(TraceTest, InertWithoutRecorder) {
  ASSERT_EQ(recorder(), nullptr);
  const Context parent{42, 7};
  SpanScope span("noop", parent);
  // No recorder: the scope passes the parent context through unchanged so
  // wire propagation still works in untraced binaries.
  EXPECT_EQ(span.context().trace, 42u);
  EXPECT_EQ(span.context().span, 7u);
}

TEST(TraceTest, RootsNewTraceAndNests) {
  Recorder rec;
  rec.install();
  {
    SpanScope outer("outer");
    EXPECT_TRUE(outer.context().traced());
    {
      SpanScope inner("inner");
      EXPECT_EQ(inner.context().trace, outer.context().trace);
    }
  }
  rec.uninstall();
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Recorded on end, so inner first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[0].trace, spans[1].trace);
  EXPECT_EQ(spans[1].parent, 0u);
}

TEST(TraceTest, ExplicitParentJoinsThatTrace) {
  Recorder rec;
  rec.install();
  {
    SpanScope span("child", Context{99, 5});
    EXPECT_EQ(span.context().trace, 99u);
  }
  rec.uninstall();
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace, 99u);
  EXPECT_EQ(spans[0].parent, 5u);
}

TEST(TraceTest, ScopedContextDetachesAndRestores) {
  Recorder rec;
  rec.install();
  {
    SpanScope outer("outer");
    {
      ScopedContext detach{Context{}};
      EXPECT_FALSE(current().traced());
      SpanScope fresh("fresh");
      EXPECT_NE(fresh.context().trace, outer.context().trace);
    }
    EXPECT_EQ(current().trace, outer.context().trace);
  }
  rec.uninstall();
}

TEST(TraceTest, NotesAttachToInnermostScope) {
  Recorder rec;
  rec.install();
  {
    SpanScope outer("outer");
    {
      SpanScope inner("inner");
      note("key", "value");
    }
  }
  rec.uninstall();
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].name, "inner");
  ASSERT_EQ(spans[0].notes.size(), 1u);
  EXPECT_EQ(spans[0].notes[0].first, "key");
  EXPECT_EQ(spans[0].notes[0].second, "value");
  EXPECT_TRUE(spans[1].notes.empty());
}

TEST(TraceTest, EventRecordsInstantaneousSpan) {
  Recorder rec;
  rec.install();
  {
    SpanScope outer("outer");
    event("blip", {{"k", "v"}});
  }
  rec.uninstall();
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "blip");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[0].begin_tick, spans[0].end_tick);
}

TEST(TraceTest, VclockMonotoneAcrossSpans) {
  Recorder rec;
  rec.install();
  std::uint64_t first_end = 0;
  {
    SpanScope a("a");
    a.end();
    first_end = vclock();
  }
  {
    SpanScope b("b");
    EXPECT_GE(b.context().span, 1u);
  }
  rec.uninstall();
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LE(spans[0].end_tick, first_end);
  EXPECT_LE(spans[0].end_tick, spans[1].begin_tick);  // a before b
}

TEST(TraceTest, ContextIsThreadLocal) {
  Recorder rec;
  rec.install();
  {
    SpanScope outer("outer");
    Context seen;
    std::thread t([&] { seen = current(); });
    t.join();
    EXPECT_FALSE(seen.traced());  // other thread starts clean
    EXPECT_TRUE(current().traced());
  }
  rec.uninstall();
}

TEST(TraceTest, ActorNamesThreadsSpans) {
  Recorder rec;
  rec.install();
  set_thread_actor("unit_test");
  { SpanScope s("named"); }
  set_thread_actor("");
  rec.uninstall();
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].actor, "unit_test");
}

TEST(TraceTest, ChromeExportIsWellFormedJson) {
  Recorder rec;
  rec.install();
  {
    SpanScope s("rpc.\"quoted\"");  // exercises escaping
    s.note("k", "line\nbreak");
  }
  rec.uninstall();
  const auto json = chrome_trace_json(rec.snapshot());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n', 0), std::string::npos)
      << "raw newline leaked into JSON string";
}

TEST(TraceTest, NormalizedDumpIsStableAcrossIdsAndTimes) {
  // Two recordings of the same logical structure with different id spacing
  // must normalize identically.
  const auto record_once = [](int warmup_spans) {
    Recorder rec;
    rec.install();
    for (int i = 0; i < warmup_spans; ++i) {
      SpanScope w("warmup");  // shifts id counters between runs
    }
    {
      SpanScope root("root");
      {
        SpanScope b("b");
        SpanScope leaf("leaf");
      }
      { SpanScope a("a"); }
    }
    rec.uninstall();
    const auto spans = rec.snapshot();
    // Find the root trace (the one containing "root").
    std::uint64_t trace_id = 0;
    for (const auto& s : spans) {
      if (s.name == "root") trace_id = s.trace;
    }
    return normalized_dump(spans, trace_id);
  };
  const auto first = record_once(0);
  const auto second = record_once(17);
  EXPECT_EQ(first, second);
  // Siblings are sorted by name: a before b despite recording order.
  EXPECT_LT(first.find("a @"), first.find("b @"));
  EXPECT_NE(first.find("root"), std::string::npos);
  EXPECT_NE(first.find("leaf"), std::string::npos);
}

}  // namespace
}  // namespace dac::trace
