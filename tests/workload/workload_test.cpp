#include "workload/workload.hpp"

#include <gtest/gtest.h>

namespace dac::workload {
namespace {

TEST(WorkloadGenerator, DeterministicFromSeed) {
  WorkloadConfig c;
  c.seed = 123;
  c.job_count = 10;
  auto a = WorkloadGenerator(c).generate();
  auto b = WorkloadGenerator(c).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].tmpl.name, b[i].tmpl.name);
  }
}

TEST(WorkloadGenerator, DifferentSeedsDiffer) {
  WorkloadConfig c;
  c.job_count = 10;
  c.seed = 1;
  auto a = WorkloadGenerator(c).generate();
  c.seed = 2;
  auto b = WorkloadGenerator(c).generate();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrival_s != b[i].arrival_s) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadGenerator, ArrivalsAreSortedAndPositive) {
  WorkloadConfig c;
  c.job_count = 50;
  auto jobs = WorkloadGenerator(c).generate();
  ASSERT_EQ(jobs.size(), 50u);
  double prev = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.arrival_s, prev);
    prev = j.arrival_s;
  }
}

TEST(WorkloadGenerator, MixRespectsWeights) {
  WorkloadConfig c;
  c.job_count = 500;
  c.seed = 9;
  JobTemplate common;
  common.name = "common";
  common.weight = 9.0;
  JobTemplate rare;
  rare.name = "rare";
  rare.weight = 1.0;
  c.mix = {common, rare};
  auto jobs = WorkloadGenerator(c).generate();
  int commons = 0;
  for (const auto& j : jobs) commons += j.tmpl.name == "common" ? 1 : 0;
  // ~90% expected; allow wide tolerance.
  EXPECT_GT(commons, 350);
  EXPECT_LT(commons, 500);
}

TEST(WorkloadGenerator, ToSpecCarriesGeometry) {
  GeneratedJob j;
  j.tmpl.name = "x";
  j.tmpl.owner = "bob";
  j.tmpl.nodes = 3;
  j.tmpl.acpn = 2;
  j.tmpl.runtime = std::chrono::milliseconds(77);
  j.tmpl.walltime = std::chrono::milliseconds(200);
  j.tmpl.priority = 4;
  const auto spec = to_spec(j, "sleeper");
  EXPECT_EQ(spec.program, "sleeper");
  EXPECT_EQ(spec.owner, "bob");
  EXPECT_EQ(spec.resources.nodes, 3);
  EXPECT_EQ(spec.resources.acpn, 2);
  EXPECT_EQ(spec.priority, 4);
  util::ByteReader r(spec.program_args);
  EXPECT_EQ(r.get<std::uint64_t>(), 77u);
}

TEST(WorkloadTrace, RoundTrip) {
  WorkloadConfig c;
  c.job_count = 5;
  c.seed = 4;
  JobTemplate t;
  t.nodes = 2;
  t.acpn = 1;
  t.priority = 2;
  c.mix = {t};
  auto jobs = WorkloadGenerator(c).generate();
  const auto trace = to_trace(jobs);
  const auto parsed = from_trace(trace);
  ASSERT_EQ(parsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(parsed[i].arrival_s, jobs[i].arrival_s, 1e-6);
    EXPECT_EQ(parsed[i].tmpl.nodes, 2);
    EXPECT_EQ(parsed[i].tmpl.acpn, 1);
    EXPECT_EQ(parsed[i].tmpl.priority, 2);
  }
}

TEST(WorkloadTrace, SkipsCommentsAndBlankLines) {
  const auto parsed = from_trace("# header\n\n1.5,j,u,1,0,10,20,0\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed[0].arrival_s, 1.5);
}

TEST(ScheduleMetrics, ComputesWaitAndMakespan) {
  std::vector<torque::JobInfo> jobs(2);
  jobs[0].state = torque::JobState::kComplete;
  jobs[0].spec.resources.nodes = 1;
  jobs[0].submit_time = 0.0;
  jobs[0].start_time = 1.0;
  jobs[0].end_time = 3.0;
  jobs[1].state = torque::JobState::kComplete;
  jobs[1].spec.resources.nodes = 2;
  jobs[1].submit_time = 0.5;
  jobs[1].start_time = 3.0;
  jobs[1].end_time = 4.0;
  const auto m = analyze(jobs, 2);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_DOUBLE_EQ(m.makespan_s, 4.0);
  EXPECT_DOUBLE_EQ(m.mean_wait_s, (1.0 + 2.5) / 2.0);
  EXPECT_DOUBLE_EQ(m.max_wait_s, 2.5);
  EXPECT_DOUBLE_EQ(m.mean_turnaround_s, (3.0 + 3.5) / 2.0);
  // busy = 1*2 + 2*1 = 4 node-seconds over 2 nodes * 4 s.
  EXPECT_DOUBLE_EQ(m.node_utilization, 4.0 / 8.0);
}

TEST(ScheduleMetrics, IgnoresIncompleteJobs) {
  std::vector<torque::JobInfo> jobs(2);
  jobs[0].state = torque::JobState::kRunning;
  jobs[1].state = torque::JobState::kComplete;
  jobs[1].spec.resources.nodes = 1;
  jobs[1].submit_time = 0.0;
  jobs[1].start_time = 0.0;
  jobs[1].end_time = 1.0;
  const auto m = analyze(jobs, 1);
  EXPECT_EQ(m.completed, 1u);
}

TEST(ScheduleMetrics, EmptyInput) {
  const auto m = analyze({}, 4);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_DOUBLE_EQ(m.makespan_s, 0.0);
}

}  // namespace
}  // namespace dac::workload
