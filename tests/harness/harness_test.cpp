// Scenario-harness self-tests, including the end-to-end acceptance check:
// the trace id minted at the IFL submission must appear on spans recorded by
// the server, the scheduler, a mom, and a dacc backend for the same job.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/scenario.hpp"
#include "trace/export.hpp"

namespace dac::testing {
namespace {

using namespace std::chrono_literals;

bool any_with_prefix(const std::set<std::string>& actors,
                     const std::string& prefix) {
  for (const auto& a : actors) {
    if (a.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST(HarnessTest, SubmitTraceReachesAllLayers) {
  Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.program("touch_ac", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    auto acs = ses.ac_init();
    ASSERT_EQ(acs.size(), 1u);
    const auto p = ses.ac_mem_alloc(acs[0], 256);
    ses.ac_mem_free(acs[0], p);
    ses.ac_finalize();
  });
  const auto id = s.submit_program("touch_ac", /*nodes=*/1, /*acpn=*/1);
  ASSERT_TRUE(s.wait_job(id).has_value());
  const auto trace_id = s.await_job_trace(id);
  ASSERT_NE(trace_id, 0u) << "submission was not traced";

  auto view = s.trace();
  const auto actors = view.actors_in_trace(trace_id);
  EXPECT_TRUE(actors.count("pbs_server")) << "no server span in trace";
  EXPECT_TRUE(actors.count("maui")) << "no scheduler span in trace";
  EXPECT_TRUE(any_with_prefix(actors, "pbs_mom.")) << "no mom span in trace";
  EXPECT_TRUE(any_with_prefix(actors, "acd@")) << "no backend span in trace";
  EXPECT_TRUE(any_with_prefix(actors, "job")) << "no job-rank span in trace";
}

TEST(HarnessTest, SubmitFlowIsCausallyOrdered) {
  Scenario s;
  s.compute_nodes(1).accel_nodes(1);
  const auto id = s.submit_program(core::kNoopProgram, 1, 1);
  ASSERT_TRUE(s.wait_job(id).has_value());
  ASSERT_NE(s.await_job_trace(id), 0u);

  auto view = s.trace();
  const auto* submit = view.first("serve.SUBMIT");
  const auto* run = view.first("maui.run_job");
  const auto* mom_run = view.first("serve.MOM_RUN_JOB");
  const auto* job_run = view.first("job.run");
  ASSERT_NE(submit, nullptr);
  ASSERT_NE(run, nullptr);
  ASSERT_NE(mom_run, nullptr);
  ASSERT_NE(job_run, nullptr);
  // One causal chain: submission accepted, then scheduled, then launched,
  // then executed. The virtual clock gives the order.
  EXPECT_TRUE(TraceView::happens_before(*submit, *run));
  EXPECT_LT(run->begin_tick, mom_run->begin_tick);
  EXPECT_LT(mom_run->begin_tick, job_run->begin_tick);
  // All four hang off the same trace.
  EXPECT_EQ(submit->trace, run->trace);
  EXPECT_EQ(run->trace, mom_run->trace);
  EXPECT_EQ(mom_run->trace, job_run->trace);
}

TEST(HarnessTest, DynRequestJoinsSubmitTrace) {
  Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.program("grower", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    auto got = ses.ac_get(1);
    ASSERT_TRUE(got.granted);
    const auto p = ses.ac_mem_alloc(got.handles[0], 64);
    ses.ac_mem_free(got.handles[0], p);
    ses.ac_free(got.client_id);
    ses.ac_finalize();
  });
  const auto id = s.submit_program("grower", 1, /*acpn=*/0);
  ASSERT_TRUE(s.wait_job(id).has_value());
  const auto trace_id = s.await_job_trace(id);
  ASSERT_NE(trace_id, 0u);

  auto view = s.trace();
  // The scheduler's grant decision and the client-side ac.get both join the
  // submit trace (the dyn queue entry carries the origin context).
  const auto* grant = view.first("maui.grant_dyn");
  ASSERT_NE(grant, nullptr);
  EXPECT_EQ(grant->trace, trace_id);
  EXPECT_EQ(TraceView::note(*grant, "job"), std::to_string(id));
  const auto* get = view.first("ac.get");
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->trace, trace_id);
  EXPECT_EQ(TraceView::note(*get, "granted"), "1");
}

TEST(HarnessTest, NoAllocationOverlapAcrossChurningJobs) {
  Scenario s;
  s.compute_nodes(2).accel_nodes(4);
  s.program("churn", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    for (int round = 0; round < 3; ++round) {
      auto got = ses.ac_get(2, /*min_count=*/1);
      if (got.granted) ses.ac_free(got.client_id);
    }
    ses.ac_finalize();
  });
  const auto a = s.submit_program("churn", 1, 0);
  const auto b = s.submit_program("churn", 1, 0);
  ASSERT_TRUE(s.wait_job(a).has_value());
  ASSERT_TRUE(s.wait_job(b).has_value());
  ASSERT_NE(s.await_job_trace(a), 0u);
  ASSERT_NE(s.await_job_trace(b), 0u);

  auto view = s.trace();
  EXPECT_TRUE(view.no_allocation_overlap(s.capacities()));
  // Every assignment was eventually released: replaying with a capacity of
  // zero headroom after completion means assign/release events balance.
  EXPECT_FALSE(view.named("alloc.assign").empty());
  EXPECT_EQ(view.named("alloc.assign").size(),
            view.named("alloc.release").size());
}

TEST(HarnessTest, LatencyBoundsAreCheckable) {
  Scenario s;
  s.compute_nodes(1).accel_nodes(1);
  const auto id = s.submit_program(core::kNoopProgram, 1, 0);
  ASSERT_TRUE(s.wait_job(id).has_value());
  ASSERT_NE(s.await_job_trace(id), 0u);

  auto view = s.trace();
  // Generous wall-clock bound — this asserts the helper wiring, not perf.
  EXPECT_TRUE(view.all_latencies_under("serve.SUBMIT", 30'000.0));
  EXPECT_FALSE(view.all_latencies_under("no.such.span", 1.0));
}

TEST(HarnessTest, ExportWritesChromeTraceJson) {
  Scenario s;
  s.compute_nodes(1).accel_nodes(1);
  const auto id = s.submit_program(core::kNoopProgram, 1, 1);
  ASSERT_TRUE(s.wait_job(id).has_value());
  ASSERT_NE(s.await_job_trace(id), 0u);

  const auto path =
      ::testing::TempDir() + "harness_export_test.trace.json";
  trace::write_chrome_trace(path, s.trace().spans());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("serve.SUBMIT"), std::string::npos);
  EXPECT_NE(json.find("pbs_server"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dac::testing
