// Golden-trace tests: the normalized span tree of a seeded scenario is
// compared against a checked-in fixture (tests/harness/golden/). Regenerate
// with DAC_UPDATE_GOLDEN=1 after an intentional protocol or tracing change.
//
// Golden scenarios use single-rank jobs: a multi-rank job's TASK_DONE
// teardown order depends on thread scheduling, which would make the sibling
// order race-dependent even after normalization.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "elastic/agent.hpp"
#include "elastic/policy.hpp"
#include "harness/scenario.hpp"

namespace dac::testing {
namespace {

// With DACSCHED_TRACE_DIR set (the CI trace-golden job), every run leaves a
// Chrome about:tracing file behind; CI uploads them when a golden fails.
void export_if_requested(Scenario& s, const char* filename) {
  if (const char* dir = std::getenv("DACSCHED_TRACE_DIR");
      dir != nullptr && *dir != '\0') {
    s.export_trace(filename);
  }
}

// Static-allocation flow: acpn accelerators granted at submission, used via
// ac_init/finalize, covering server -> maui.run_job -> mom -> job -> acd.
std::string run_static_flow() {
  Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.program("golden_static", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    auto acs = ses.ac_init();
    ASSERT_EQ(acs.size(), 1u);
    const auto p = ses.ac_mem_alloc(acs[0], 128);
    ses.ac_mem_free(acs[0], p);
    ses.ac_finalize();
  });
  const auto id = s.submit_program("golden_static", /*nodes=*/1, /*acpn=*/1);
  EXPECT_TRUE(s.wait_job(id).has_value());
  const auto trace_id = s.await_job_trace(id);
  EXPECT_NE(trace_id, 0u);
  export_if_requested(s, "static_flow.trace.json");
  return s.trace().normalized(trace_id);
}

// Dynamic flow: no static accelerators; the job grows by one with
// pbs_dynget and shrinks again — covering serve.DYN_GET, the scheduler's
// grant decision, MOM_DYN_ADD, and the spawned backend daemon.
std::string run_dyn_flow() {
  Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.program("golden_dyn", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    auto got = ses.ac_get(1);
    ASSERT_TRUE(got.granted);
    const auto p = ses.ac_mem_alloc(got.handles[0], 64);
    ses.ac_mem_free(got.handles[0], p);
    ses.ac_free(got.client_id);
    ses.ac_finalize();
  });
  const auto id = s.submit_program("golden_dyn", /*nodes=*/1, /*acpn=*/0);
  EXPECT_TRUE(s.wait_job(id).has_value());
  const auto trace_id = s.await_job_trace(id);
  EXPECT_NE(trace_id, 0u);
  export_if_requested(s, "dyn_flow.trace.json");
  return s.trace().normalized(trace_id);
}

// Elastic shrink flow: a hog job holds the only accelerator and registers a
// shrink-capable ElasticAgent; a second job's dynget starves, and the
// ShrinkUnderPressure policy negotiates the hog's set back. The golden is
// the requester's trace — one causal tree from its serve.DYN_GET through
// maui.propose_shrink, the offer/ack round-trip, the hog's elastic.apply /
// ac.detach, and the re-grant of the reclaimed slot. Deferred dyngets are
// silent (no spans), so the number of scheduler cycles before the proposal
// does not perturb the tree.
std::string run_elastic_shrink_flow() {
  using namespace std::chrono_literals;
  std::atomic<bool> hog_ready{false};
  std::atomic<bool> done{false};
  Scenario s;
  s.compute_nodes(2).accel_nodes(1);
  s.config().elastic_policy =
      std::make_shared<elastic::ShrinkUnderPressurePolicy>(
          elastic::ShrinkUnderPressurePolicy::Config{.queue_threshold = 1,
                                                     .min_wait_s = 0.0});
  s.program("golden_hog", [&](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    auto got = ses.ac_get(1);
    ASSERT_TRUE(got.granted);
    auto cfg = ctx.elastic_config();
    cfg.accept_shrink = true;
    elastic::ElasticAgent agent(ctx.mpi().process(), cfg);
    agent.on_shrink(
        [&](const elastic::Reconfig& r) { ses.ac_detach(r.client_id); });
    agent.announce();
    hog_ready = true;
    while (!done.load()) (void)agent.service(5ms);
    // Grace drain: apply a reconfigure committed just before `done`.
    const auto grace = simtime::now() + 200ms;
    while (simtime::now() < grace) (void)agent.service(5ms);
    agent.stop();
    ses.ac_finalize();
  });
  s.program("golden_req", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    auto got = ses.ac_get(1);
    ASSERT_TRUE(got.granted);
    const auto p = ses.ac_mem_alloc(got.handles[0], 64);
    ses.ac_mem_free(got.handles[0], p);
    ses.ac_free(got.client_id);
    ses.ac_finalize();
  });
  const auto hog_id = s.submit_program("golden_hog", /*nodes=*/1, /*acpn=*/0);
  EXPECT_TRUE(await([&] { return hog_ready.load(); }, 30'000ms));
  const auto req_id = s.submit_program("golden_req", /*nodes=*/1, /*acpn=*/0);
  EXPECT_TRUE(s.wait_job(req_id, 30'000ms).has_value());
  done = true;
  EXPECT_TRUE(s.wait_job(hog_id, 30'000ms).has_value());
  const auto trace_id = s.await_job_trace(req_id);
  EXPECT_NE(trace_id, 0u);
  export_if_requested(s, "elastic_shrink_flow.trace.json");
  return s.trace().normalized(trace_id);
}

TEST(GoldenTraceTest, StaticAllocationFlowGolden) {
  EXPECT_TRUE(matches_golden("static_flow", run_static_flow()));
}

TEST(GoldenTraceTest, DynGetDynFreeFlowGolden) {
  EXPECT_TRUE(matches_golden("dyn_flow", run_dyn_flow()));
}

TEST(GoldenTraceTest, ElasticShrinkRegrantFlowGolden) {
  EXPECT_TRUE(
      matches_golden("elastic_shrink_flow", run_elastic_shrink_flow()));
}

TEST(GoldenTraceTest, NormalizedTraceIsDeterministicAcrossRuns) {
  // Two independent boots of the same scenario normalize identically —
  // the property the goldens rely on (and CI re-checks under two different
  // fault seeds; delay-only injection must not change the span tree).
  const auto first = run_static_flow();
  const auto second = run_static_flow();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dac::testing
