// Golden-trace tests: the normalized span tree of a seeded scenario is
// compared against a checked-in fixture (tests/harness/golden/). Regenerate
// with DAC_UPDATE_GOLDEN=1 after an intentional protocol or tracing change.
//
// Golden scenarios use single-rank jobs: a multi-rank job's TASK_DONE
// teardown order depends on thread scheduling, which would make the sibling
// order race-dependent even after normalization.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/scenario.hpp"

namespace dac::testing {
namespace {

// With DACSCHED_TRACE_DIR set (the CI trace-golden job), every run leaves a
// Chrome about:tracing file behind; CI uploads them when a golden fails.
void export_if_requested(Scenario& s, const char* filename) {
  if (const char* dir = std::getenv("DACSCHED_TRACE_DIR");
      dir != nullptr && *dir != '\0') {
    s.export_trace(filename);
  }
}

// Static-allocation flow: acpn accelerators granted at submission, used via
// ac_init/finalize, covering server -> maui.run_job -> mom -> job -> acd.
std::string run_static_flow() {
  Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.program("golden_static", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    auto acs = ses.ac_init();
    ASSERT_EQ(acs.size(), 1u);
    const auto p = ses.ac_mem_alloc(acs[0], 128);
    ses.ac_mem_free(acs[0], p);
    ses.ac_finalize();
  });
  const auto id = s.submit_program("golden_static", /*nodes=*/1, /*acpn=*/1);
  EXPECT_TRUE(s.wait_job(id).has_value());
  const auto trace_id = s.await_job_trace(id);
  EXPECT_NE(trace_id, 0u);
  export_if_requested(s, "static_flow.trace.json");
  return s.trace().normalized(trace_id);
}

// Dynamic flow: no static accelerators; the job grows by one with
// pbs_dynget and shrinks again — covering serve.DYN_GET, the scheduler's
// grant decision, MOM_DYN_ADD, and the spawned backend daemon.
std::string run_dyn_flow() {
  Scenario s;
  s.compute_nodes(1).accel_nodes(2);
  s.program("golden_dyn", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    (void)ses.ac_init();
    auto got = ses.ac_get(1);
    ASSERT_TRUE(got.granted);
    const auto p = ses.ac_mem_alloc(got.handles[0], 64);
    ses.ac_mem_free(got.handles[0], p);
    ses.ac_free(got.client_id);
    ses.ac_finalize();
  });
  const auto id = s.submit_program("golden_dyn", /*nodes=*/1, /*acpn=*/0);
  EXPECT_TRUE(s.wait_job(id).has_value());
  const auto trace_id = s.await_job_trace(id);
  EXPECT_NE(trace_id, 0u);
  export_if_requested(s, "dyn_flow.trace.json");
  return s.trace().normalized(trace_id);
}

TEST(GoldenTraceTest, StaticAllocationFlowGolden) {
  EXPECT_TRUE(matches_golden("static_flow", run_static_flow()));
}

TEST(GoldenTraceTest, DynGetDynFreeFlowGolden) {
  EXPECT_TRUE(matches_golden("dyn_flow", run_dyn_flow()));
}

TEST(GoldenTraceTest, NormalizedTraceIsDeterministicAcrossRuns) {
  // Two independent boots of the same scenario normalize identically —
  // the property the goldens rely on (and CI re-checks under two different
  // fault seeds; delay-only injection must not change the span tree).
  const auto first = run_static_flow();
  const auto second = run_static_flow();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dac::testing
