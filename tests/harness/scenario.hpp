// Scenario test harness: boots a virtual DAC cluster with a trace::Recorder
// installed, scripts client actions (submissions, dynamic requests, faults)
// against it, and exposes the collected trace through TraceView — assertion
// helpers for happens-before ordering, span latency bounds, allocation
// invariants, and normalized golden-trace comparison.
//
//   dac::testing::Scenario s;
//   s.program("app", [](core::JobContext& ctx) { ... });
//   s.boot();
//   const auto id = s.submit_program("app", /*nodes=*/1, /*acpn=*/2);
//   ASSERT_TRUE(s.wait_job(id));
//   auto view = s.trace();
//   const auto t = view.trace_of_job(id);
//   EXPECT_TRUE(matches_golden("my_flow", view.normalized(t)));
//
// Traces can be exported in Chrome about:tracing format with export_trace();
// CI uploads those files when a golden test fails (see docs/TRACING.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "simtime/clock.hpp"
#include "trace/trace.hpp"

namespace dac::testing {

// Polls `cond` every `interval` until it returns true or `timeout` of
// scenario time elapses; returns the predicate's final value. The predicate
// may have side effects (e.g. retrying a dynget until it is granted). This
// is the one sanctioned sleep-poll of the test tree — use it instead of
// hand-rolled sleep loops so the suppression stays centralized here.
inline bool await(const std::function<bool()>& cond,
                  std::chrono::milliseconds timeout,
                  std::chrono::milliseconds interval =
                      std::chrono::milliseconds(5)) {
  const auto deadline = simtime::now() + timeout;
  while (!cond()) {
    if (simtime::now() >= deadline) return cond();
    simtime::sleep_for(interval);  // NOLINT-DACSCHED(sleep-poll)
  }
  return true;
}

// Read-only view over a snapshot of recorded spans.
class TraceView {
 public:
  explicit TraceView(std::vector<trace::Span> spans);

  [[nodiscard]] const std::vector<trace::Span>& spans() const {
    return spans_;
  }
  [[nodiscard]] std::vector<const trace::Span*> named(
      const std::string& name) const;
  [[nodiscard]] std::vector<const trace::Span*> in_trace(
      std::uint64_t trace_id) const;
  // First span (by begin tick) with this name, or nullptr.
  [[nodiscard]] const trace::Span* first(const std::string& name) const;
  // The value of `key` on `span`, or "" when absent.
  [[nodiscard]] static std::string note(const trace::Span& span,
                                        const std::string& key);

  // Trace id captured at the IFL submission of `job`: the serve.SUBMIT span
  // carrying note job=<id>. 0 when the job was never (visibly) submitted.
  [[nodiscard]] std::uint64_t trace_of_job(torque::JobId job) const;
  // Distinct actor names recorded on spans of one trace — the acceptance
  // check "the submit trace reaches server, scheduler, mom and backend".
  [[nodiscard]] std::set<std::string> actors_in_trace(
      std::uint64_t trace_id) const;

  // Causal order via the virtual clock: a finished before b began.
  [[nodiscard]] static bool happens_before(const trace::Span& a,
                                           const trace::Span& b) {
    return a.end_tick <= b.begin_tick;
  }
  // Every span named `name` took at most `bound_ms` wall milliseconds.
  [[nodiscard]] ::testing::AssertionResult all_latencies_under(
      const std::string& name, double bound_ms) const;

  // Replays the alloc.assign / alloc.release events in virtual-clock order
  // and checks that no host's assigned slots ever exceed its capacity and
  // that releases only free what was assigned. `capacity_of` maps hostname
  // to slot count (the Scenario provides one built from its topology).
  [[nodiscard]] ::testing::AssertionResult no_allocation_overlap(
      const std::function<int(const std::string&)>& capacity_of) const;

  // Deterministic textual form of one trace: the span tree with ids, ticks
  // and wall times stripped and siblings sorted canonically — identical
  // across runs of the same seeded scenario (docs/TRACING.md).
  [[nodiscard]] std::string normalized(std::uint64_t trace_id) const;

 private:
  std::vector<trace::Span> spans_;
};

// Compares `actual` against tests/harness/golden/<name>.golden. When the
// environment variable DAC_UPDATE_GOLDEN is set (non-empty), (re)writes the
// fixture instead and succeeds.
::testing::AssertionResult matches_golden(const std::string& name,
                                          const std::string& actual);

// Builder + runtime for one traced cluster scenario.
class Scenario {
 public:
  Scenario();  // DacClusterConfig::fast()
  explicit Scenario(core::DacClusterConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // ---- builder (before boot) -------------------------------------------
  Scenario& compute_nodes(std::size_t n);
  Scenario& accel_nodes(std::size_t n);
  Scenario& policy(maui::Policy p);
  // Selects the simtime backend for this scenario (applied at boot). The
  // default is whatever DACSCHED_CLOCK picked at process start, so a plain
  // Scenario runs identically under both CI legs; an explicit choice makes a
  // single test DiscreteEvent (or forces RealTime) regardless of env.
  Scenario& clock_mode(simtime::Mode mode);
  Scenario& fault_plan(std::shared_ptr<faults::FaultPlan> plan);
  Scenario& program(const std::string& name, core::JobProgram prog);
  [[nodiscard]] core::DacClusterConfig& config() { return config_; }

  // Installs the recorder and boots the cluster. Idempotent.
  core::DacCluster& boot();
  [[nodiscard]] core::DacCluster& cluster();

  // ---- scripted actions (boot() implied) -------------------------------
  torque::JobId submit_program(
      const std::string& prog, int nodes, int acpn, util::Bytes args = {},
      std::chrono::milliseconds walltime = std::chrono::milliseconds(60'000));
  std::optional<torque::JobInfo> wait_job(
      torque::JobId id,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(60'000));
  void fail_node(std::size_t cluster_index);
  void recover_node(std::size_t cluster_index);

  // Capacity function for TraceView::no_allocation_overlap, derived from
  // the booted topology (compute nodes np=8, accelerators np=1).
  [[nodiscard]] std::function<int(const std::string&)> capacities() const;

  // ---- trace access -----------------------------------------------------
  // Waits for `job`'s trace to go quiet: its teardown spans (daemon serve
  // spans, job wrappers, TASK_DONE handling) record asynchronously after
  // wait_job returns, and a snapshot taken mid-drain would be racy. Only
  // the job's trace is waited on — periodic sources (heartbeats, scheduler
  // polls) root separate traces and never go quiet. Returns the job's trace
  // id, or 0 when the submission was never traced / the wait timed out.
  std::uint64_t await_job_trace(
      torque::JobId job,
      std::chrono::milliseconds idle = std::chrono::milliseconds(50),
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));
  [[nodiscard]] TraceView trace() const;
  // Writes the whole recording as a Chrome about:tracing JSON file into
  // $DACSCHED_TRACE_DIR (or the CWD) and returns the full path.
  std::string export_trace(const std::string& filename) const;

 private:
  core::DacClusterConfig config_;
  std::map<std::string, core::JobProgram> programs_;
  std::optional<simtime::Mode> clock_mode_;
  // Restores the process-wide mode a clock_mode() scenario switched away
  // from, so later tests in the same binary see the env-selected backend.
  std::optional<simtime::Mode> restore_mode_;
  // Declared before the cluster so spans recorded during cluster shutdown
  // still have a live recorder; uninstalled in ~Scenario before destruction.
  trace::Recorder recorder_;
  std::unique_ptr<core::DacCluster> cluster_;
};

}  // namespace dac::testing
