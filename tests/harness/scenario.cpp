#include "harness/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "trace/export.hpp"

namespace dac::testing {

// ---------------------------------------------------------------- TraceView

TraceView::TraceView(std::vector<trace::Span> spans)
    : spans_(std::move(spans)) {
  std::sort(spans_.begin(), spans_.end(),
            [](const trace::Span& a, const trace::Span& b) {
              return a.begin_tick != b.begin_tick ? a.begin_tick < b.begin_tick
                                                  : a.id < b.id;
            });
}

std::vector<const trace::Span*> TraceView::named(
    const std::string& name) const {
  std::vector<const trace::Span*> out;
  for (const auto& s : spans_) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

std::vector<const trace::Span*> TraceView::in_trace(
    std::uint64_t trace_id) const {
  std::vector<const trace::Span*> out;
  for (const auto& s : spans_) {
    if (s.trace == trace_id) out.push_back(&s);
  }
  return out;
}

const trace::Span* TraceView::first(const std::string& name) const {
  for (const auto& s : spans_) {
    if (s.name == name) return &s;  // spans_ is begin-tick sorted
  }
  return nullptr;
}

std::string TraceView::note(const trace::Span& span, const std::string& key) {
  for (const auto& [k, v] : span.notes) {
    if (k == key) return v;
  }
  return {};
}

std::uint64_t TraceView::trace_of_job(torque::JobId job) const {
  const auto want = std::to_string(job);
  for (const auto& s : spans_) {
    if (s.name == "serve.SUBMIT" && note(s, "job") == want) return s.trace;
  }
  return 0;
}

std::set<std::string> TraceView::actors_in_trace(
    std::uint64_t trace_id) const {
  std::set<std::string> out;
  for (const auto& s : spans_) {
    if (s.trace == trace_id) out.insert(s.actor);
  }
  return out;
}

::testing::AssertionResult TraceView::all_latencies_under(
    const std::string& name, double bound_ms) const {
  int checked = 0;
  for (const auto& s : spans_) {
    if (s.name != name) continue;
    ++checked;
    if (s.duration_ms() > bound_ms) {
      return ::testing::AssertionFailure()
             << "span '" << name << "' (actor " << s.actor << ") took "
             << s.duration_ms() << " ms, bound " << bound_ms << " ms";
    }
  }
  if (checked == 0) {
    return ::testing::AssertionFailure()
           << "no span named '" << name << "' was recorded";
  }
  return ::testing::AssertionSuccess() << checked << " span(s) in bound";
}

::testing::AssertionResult TraceView::no_allocation_overlap(
    const std::function<int(const std::string&)>& capacity_of) const {
  // alloc.* events are instantaneous spans; spans_ is already in
  // virtual-clock order, which the fabric ties to causality.
  std::map<std::string, std::map<std::string, int>> held;  // host -> job -> n
  for (const auto& s : spans_) {
    if (s.name != "alloc.assign" && s.name != "alloc.release") continue;
    const auto host = note(s, "host");
    const auto job = note(s, "job");
    const int slots = std::atoi(note(s, "slots").c_str());
    auto& by_job = held[host];
    if (s.name == "alloc.assign") {
      by_job[job] += slots;
      int used = 0;
      for (const auto& [j, n] : by_job) used += n;
      if (used > capacity_of(host)) {
        return ::testing::AssertionFailure()
               << "host '" << host << "' oversubscribed: " << used
               << " slot(s) assigned, capacity " << capacity_of(host)
               << " (latest: job " << job << ")";
      }
    } else {
      auto it = by_job.find(job);
      if (it == by_job.end() || it->second < slots) {
        return ::testing::AssertionFailure()
               << "host '" << host << "': release of " << slots
               << " slot(s) for job " << job << " that were not assigned";
      }
      it->second -= slots;
      if (it->second == 0) by_job.erase(it);
    }
  }
  return ::testing::AssertionSuccess();
}

std::string TraceView::normalized(std::uint64_t trace_id) const {
  return trace::normalized_dump(spans_, trace_id);
}

// ------------------------------------------------------------------ goldens

::testing::AssertionResult matches_golden(const std::string& name,
                                          const std::string& actual) {
  const std::string path =
      std::string(DAC_GOLDEN_DIR) + "/" + name + ".golden";
  const char* update = std::getenv("DAC_UPDATE_GOLDEN");
  if (update != nullptr && *update != '\0') {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      return ::testing::AssertionFailure()
             << "cannot write golden fixture " << path;
    }
    out << actual;
    return ::testing::AssertionSuccess() << "golden '" << name << "' updated";
  }
  std::ifstream in(path);
  if (!in) {
    return ::testing::AssertionFailure()
           << "missing golden fixture " << path
           << " (run with DAC_UPDATE_GOLDEN=1 to create it)";
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return ::testing::AssertionSuccess();
  // Point at the first differing line so a mismatch is readable without a
  // separate diff tool.
  std::istringstream ea(expected);
  std::istringstream aa(actual);
  std::string el;
  std::string al;
  int line = 0;
  while (true) {
    ++line;
    const bool has_e = static_cast<bool>(std::getline(ea, el));
    const bool has_a = static_cast<bool>(std::getline(aa, al));
    if (!has_e && !has_a) break;
    if (el != al || has_e != has_a) {
      return ::testing::AssertionFailure()
             << "golden '" << name << "' mismatch at line " << line
             << "\n  expected: " << (has_e ? el : "<eof>")
             << "\n  actual:   " << (has_a ? al : "<eof>")
             << "\n(set DAC_UPDATE_GOLDEN=1 to regenerate " << path << ")";
    }
  }
  return ::testing::AssertionFailure() << "golden '" << name << "' mismatch";
}

// ----------------------------------------------------------------- Scenario

Scenario::Scenario() : Scenario(core::DacClusterConfig::fast()) {}

Scenario::Scenario(core::DacClusterConfig config)
    : config_(std::move(config)) {}

Scenario::~Scenario() {
  // Stop all daemons while the recorder is still installed, then detach it
  // so spans from any later scenario in the same process start clean.
  cluster_.reset();
  recorder_.uninstall();
  if (restore_mode_) {
    simtime::Clock::instance().set_mode(*restore_mode_);
  }
}

Scenario& Scenario::compute_nodes(std::size_t n) {
  config_.compute_nodes = n;
  return *this;
}

Scenario& Scenario::accel_nodes(std::size_t n) {
  config_.accel_nodes = n;
  return *this;
}

Scenario& Scenario::policy(maui::Policy p) {
  config_.policy = p;
  return *this;
}

Scenario& Scenario::fault_plan(std::shared_ptr<faults::FaultPlan> plan) {
  config_.fault_plan = std::move(plan);
  return *this;
}

Scenario& Scenario::program(const std::string& name, core::JobProgram prog) {
  programs_[name] = std::move(prog);
  return *this;
}

Scenario& Scenario::clock_mode(simtime::Mode mode) {
  clock_mode_ = mode;
  return *this;
}

core::DacCluster& Scenario::boot() {
  if (!cluster_) {
    if (clock_mode_) {
      auto& clk = simtime::Clock::instance();
      if (clk.mode() != *clock_mode_) {
        restore_mode_ = clk.mode();
        clk.set_mode(*clock_mode_);
      }
    }
    recorder_.install();
    cluster_ = std::make_unique<core::DacCluster>(config_);
    for (auto& [name, prog] : programs_) {
      cluster_->register_program(name, prog);
    }
  }
  return *cluster_;
}

core::DacCluster& Scenario::cluster() { return boot(); }

torque::JobId Scenario::submit_program(const std::string& prog, int nodes,
                                       int acpn, util::Bytes args,
                                       std::chrono::milliseconds walltime) {
  return boot().submit_program(prog, nodes, acpn, std::move(args), walltime);
}

std::optional<torque::JobInfo> Scenario::wait_job(
    torque::JobId id, std::chrono::milliseconds timeout) {
  return boot().wait_job(id, timeout);
}

void Scenario::fail_node(std::size_t cluster_index) {
  boot().fail_node(cluster_index);
}

void Scenario::recover_node(std::size_t cluster_index) {
  boot().recover_node(cluster_index);
}

std::function<int(const std::string&)> Scenario::capacities() const {
  // Mirrors DacCluster's MomConfig: compute nodes get 8 slots, accelerator
  // nodes 1 (src/core/cluster.cpp).
  return [](const std::string& host) {
    return host.rfind("cn", 0) == 0 ? 8 : 1;
  };
}

std::uint64_t Scenario::await_job_trace(torque::JobId job,
                                        std::chrono::milliseconds idle,
                                        std::chrono::milliseconds timeout) {
  const auto trace_id = trace().trace_of_job(job);
  if (trace_id == 0) return 0;
  if (!recorder_.await_quiet(trace_id, idle, timeout)) return 0;
  return trace_id;
}

TraceView Scenario::trace() const { return TraceView(recorder_.snapshot()); }

std::string Scenario::export_trace(const std::string& filename) const {
  std::string path = filename;
  if (const char* dir = std::getenv("DACSCHED_TRACE_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + filename;
  }
  trace::write_chrome_trace(path, recorder_.snapshot());
  return path;
}

}  // namespace dac::testing
