// Property sweeps over the built-in kernels: for random sizes and contents,
// the device results must match host references exactly (the kernels are
// real computations, not stubs).
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "gpusim/device.hpp"

namespace dac::gpusim {
namespace {

class KernelProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  KernelProperty() : dev_([] {
    DeviceConfig c;
    c.memory_bytes = 8 << 20;
    c.time_scale = 0.0;
    return c;
  }()) {
    register_builtin_kernels(dev_);
  }

  DevicePtr upload(const std::vector<double>& v) {
    auto p = dev_.mem_alloc(v.size() * sizeof(double));
    dev_.memcpy_h2d(p, v.data(), v.size() * sizeof(double));
    return p;
  }

  std::vector<double> download(DevicePtr p, std::size_t n) {
    std::vector<double> v(n);
    dev_.memcpy_d2h(v.data(), p, n * sizeof(double));
    return v;
  }

  std::vector<double> random_vec(std::mt19937_64& rng, std::size_t n) {
    std::uniform_real_distribution<double> dist(-10.0, 10.0);
    std::vector<double> v(n);
    for (auto& x : v) x = dist(rng);
    return v;
  }

  Device dev_;
};

TEST_P(KernelProperty, VectorAddMatchesReference) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = 1 + rng() % 3000;
    auto a = random_vec(rng, n);
    auto b = random_vec(rng, n);
    auto da = upload(a);
    auto db = upload(b);
    auto dc = dev_.mem_alloc(n * sizeof(double));
    util::ByteWriter w;
    w.put<std::uint64_t>(dc);
    w.put<std::uint64_t>(da);
    w.put<std::uint64_t>(db);
    w.put<std::uint64_t>(n);
    dev_.launch("vector_add", {1, 1, 1}, {256, 1, 1}, w.bytes());
    const auto c = download(dc, n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(c[i], a[i] + b[i]) << "n=" << n << " i=" << i;
    }
    dev_.mem_free(da);
    dev_.mem_free(db);
    dev_.mem_free(dc);
  }
}

TEST_P(KernelProperty, DotMatchesReference) {
  std::mt19937_64 rng(GetParam() ^ 0xD07);
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = 1 + rng() % 2000;
    auto a = random_vec(rng, n);
    auto b = random_vec(rng, n);
    const double expect =
        std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
    auto da = upload(a);
    auto db = upload(b);
    auto out = dev_.mem_alloc(sizeof(double));
    util::ByteWriter w;
    w.put<std::uint64_t>(out);
    w.put<std::uint64_t>(da);
    w.put<std::uint64_t>(db);
    w.put<std::uint64_t>(n);
    dev_.launch("dot", {1, 1, 1}, {256, 1, 1}, w.bytes());
    ASSERT_DOUBLE_EQ(download(out, 1)[0], expect);
    dev_.mem_free(da);
    dev_.mem_free(db);
    dev_.mem_free(out);
  }
}

TEST_P(KernelProperty, MatmulMatchesReference) {
  std::mt19937_64 rng(GetParam() ^ 0x3A3);
  const std::uint64_t m = 1 + rng() % 12;
  const std::uint64_t k = 1 + rng() % 12;
  const std::uint64_t n = 1 + rng() % 12;
  auto a = random_vec(rng, m * k);
  auto b = random_vec(rng, k * n);
  std::vector<double> expect(m * n, 0.0);
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      for (std::uint64_t t = 0; t < k; ++t) {
        expect[i * n + j] += a[i * k + t] * b[t * n + j];
      }
    }
  }
  auto da = upload(a);
  auto db = upload(b);
  auto dc = dev_.mem_alloc(m * n * sizeof(double));
  util::ByteWriter w;
  w.put<std::uint64_t>(dc);
  w.put<std::uint64_t>(da);
  w.put<std::uint64_t>(db);
  w.put<std::uint64_t>(m);
  w.put<std::uint64_t>(k);
  w.put<std::uint64_t>(n);
  dev_.launch("matmul", {1, 1, 1}, {64, 1, 1}, w.bytes());
  const auto c = download(dc, m * n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expect[i], 1e-9);
  }
}

TEST_P(KernelProperty, FillThenReduceIsConsistent) {
  std::mt19937_64 rng(GetParam() ^ 0xF11);
  const std::uint64_t n = 1 + rng() % 5000;
  const double value = static_cast<double>(rng() % 1000) / 7.0;
  auto buf = dev_.mem_alloc(n * sizeof(double));
  util::ByteWriter wf;
  wf.put<std::uint64_t>(buf);
  wf.put<double>(value);
  wf.put<std::uint64_t>(n);
  dev_.launch("fill", {1, 1, 1}, {256, 1, 1}, wf.bytes());
  auto out = dev_.mem_alloc(sizeof(double));
  util::ByteWriter wr;
  wr.put<std::uint64_t>(out);
  wr.put<std::uint64_t>(buf);
  wr.put<std::uint64_t>(n);
  dev_.launch("reduce_sum", {1, 1, 1}, {256, 1, 1}, wr.bytes());
  ASSERT_NEAR(download(out, 1)[0], value * static_cast<double>(n),
              1e-6 * static_cast<double>(n));
  dev_.mem_free(buf);
  dev_.mem_free(out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelProperty,
                         ::testing::Values(3, 77, 901, 20260708));

}  // namespace
}  // namespace dac::gpusim
