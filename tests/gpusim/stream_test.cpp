#include "gpusim/stream.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/clock.hpp"

namespace dac::gpusim {
namespace {

DeviceConfig timed_config(double scale) {
  DeviceConfig c;
  c.memory_bytes = 4 << 20;
  c.time_scale = scale;
  return c;
}

class StreamTest : public ::testing::Test {
 protected:
  StreamTest() : dev_(timed_config(0.0)) { register_builtin_kernels(dev_); }
  Device dev_;
};

TEST_F(StreamTest, AsyncOpsRunInOrder) {
  Stream stream(dev_);
  constexpr std::uint64_t kN = 256;
  const auto bytes = kN * sizeof(double);
  auto a = dev_.mem_alloc(bytes);
  auto b = dev_.mem_alloc(bytes);
  auto c = dev_.mem_alloc(bytes);
  std::vector<double> ha(kN, 2.0);
  std::vector<double> hb(kN, 3.0);
  std::vector<double> hc(kN, 0.0);

  stream.memcpy_h2d_async(a, ha.data(), bytes);
  stream.memcpy_h2d_async(b, hb.data(), bytes);
  util::ByteWriter args;
  args.put<std::uint64_t>(c);
  args.put<std::uint64_t>(a);
  args.put<std::uint64_t>(b);
  args.put<std::uint64_t>(kN);
  stream.launch_async("vector_add", {1, 1, 1}, {256, 1, 1},
                      std::move(args).take());
  stream.memcpy_d2h_async(hc.data(), c, bytes);
  stream.synchronize();

  for (std::uint64_t i = 0; i < kN; i += 31) EXPECT_DOUBLE_EQ(hc[i], 5.0);
  dev_.mem_free(a);
  dev_.mem_free(b);
  dev_.mem_free(c);
}

TEST_F(StreamTest, SourceBufferCopiedAtEnqueue) {
  Stream stream(dev_);
  auto p = dev_.mem_alloc(sizeof(double));
  {
    double v = 42.0;
    stream.memcpy_h2d_async(p, &v, sizeof(v));
    v = -1.0;  // must not affect the in-flight copy
  }
  stream.synchronize();
  double out = 0.0;
  dev_.memcpy_d2h(&out, p, sizeof(out));
  EXPECT_DOUBLE_EQ(out, 42.0);
  dev_.mem_free(p);
}

TEST_F(StreamTest, EventsFireInOrder) {
  Stream stream(dev_);
  Event e1;
  Event e2;
  stream.record(e1);
  stream.record(e2);
  stream.synchronize();
  EXPECT_TRUE(e1.query());
  EXPECT_TRUE(e2.query());
  EXPECT_GE(Event::elapsed_seconds(e1, e2), 0.0);
}

TEST_F(StreamTest, EventWaitBlocksUntilReached) {
  Device slow(timed_config(1.0));
  slow.register_kernel("pause",
                       Kernel{[](KernelContext&) {},
                              [](const KernelContext&) {
                                return std::chrono::nanoseconds(30'000'000);
                              }});
  Stream stream(slow);
  Event done;
  stream.launch_async("pause", {1, 1, 1}, {1, 1, 1}, {});
  stream.record(done);
  EXPECT_FALSE(done.query());
  done.wait();
  EXPECT_TRUE(done.query());
}

TEST_F(StreamTest, AsyncErrorSurfacesAtSynchronize) {
  Stream stream(dev_);
  stream.launch_async("no_such_kernel", {1, 1, 1}, {1, 1, 1}, {});
  EXPECT_THROW(stream.synchronize(), DeviceError);
  // The stream keeps working afterwards.
  Event ok;
  stream.record(ok);
  stream.synchronize();
  EXPECT_TRUE(ok.query());
}

TEST_F(StreamTest, TwoStreamsOverlap) {
  // Two kernels of 40 ms each: sequential = 80 ms, overlapped < 70 ms.
  Device slow(timed_config(1.0));
  slow.register_kernel("pause",
                       Kernel{[](KernelContext&) {},
                              [](const KernelContext&) {
                                return std::chrono::nanoseconds(40'000'000);
                              }});
  Stream s1(slow);
  Stream s2(slow);
  util::Stopwatch w;
  s1.launch_async("pause", {1, 1, 1}, {1, 1, 1}, {});
  s2.launch_async("pause", {1, 1, 1}, {1, 1, 1}, {});
  s1.synchronize();
  s2.synchronize();
  EXPECT_LT(w.elapsed_seconds(), 0.070);
}

TEST_F(StreamTest, SynchronizeOnEmptyStream) {
  Stream stream(dev_);
  stream.synchronize();  // no-op
}

TEST_F(StreamTest, DoubleBuffering) {
  // The latency-hiding pattern the paper appeals to: upload chunk i+1 while
  // chunk i computes — verify correctness of the interleaved schedule.
  Stream upload(dev_);
  Stream compute(dev_);
  constexpr std::uint64_t kChunk = 128;
  const auto bytes = kChunk * sizeof(double);
  auto buf0 = dev_.mem_alloc(bytes);
  auto buf1 = dev_.mem_alloc(bytes);
  auto acc = dev_.mem_alloc(sizeof(double));

  util::ByteWriter fill0;
  fill0.put<std::uint64_t>(acc);
  fill0.put<double>(0.0);
  fill0.put<std::uint64_t>(1);
  dev_.launch("fill", {1, 1, 1}, {1, 1, 1}, fill0.bytes());

  double total = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto buf = i % 2 == 0 ? buf0 : buf1;
    std::vector<double> chunk(kChunk, static_cast<double>(i + 1));
    upload.memcpy_h2d_async(buf, chunk.data(), bytes);
    Event uploaded;
    upload.record(uploaded);
    uploaded.wait();  // compute stream may only start after the upload

    util::ByteWriter args;
    args.put<std::uint64_t>(acc);
    args.put<std::uint64_t>(buf);
    args.put<std::uint64_t>(kChunk);
    // reduce_sum overwrites; accumulate on the host side for the check.
    compute.launch_async("reduce_sum", {1, 1, 1}, {1, 1, 1},
                         std::move(args).take());
    compute.synchronize();
    double v = 0.0;
    dev_.memcpy_d2h(&v, acc, sizeof(v));
    total += v;
  }
  EXPECT_DOUBLE_EQ(total, 128.0 * (1 + 2 + 3 + 4));
  dev_.mem_free(buf0);
  dev_.mem_free(buf1);
  dev_.mem_free(acc);
}

}  // namespace
}  // namespace dac::gpusim
