#include "gpusim/device.hpp"
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "gpusim/driver.hpp"

namespace dac::gpusim {
namespace {

DeviceConfig small_config() {
  DeviceConfig c;
  c.memory_bytes = 1 << 20;  // 1 MiB
  c.time_scale = 0.0;
  return c;
}

TEST(DeviceMemory, AllocFreeRoundTrip) {
  Device dev(small_config());
  const auto before = dev.bytes_free();
  auto p = dev.mem_alloc(1024);
  EXPECT_LT(dev.bytes_free(), before);
  dev.mem_free(p);
  EXPECT_EQ(dev.bytes_free(), before);
}

TEST(DeviceMemory, DistinctAllocationsDoNotOverlap) {
  Device dev(small_config());
  auto a = dev.mem_alloc(1000);
  auto b = dev.mem_alloc(1000);
  // 256-byte alignment: blocks are at least 1024 apart.
  EXPECT_GE(b > a ? b - a : a - b, 1000u);
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  Device dev(small_config());
  EXPECT_THROW(dev.mem_alloc(2 << 20), DeviceError);
}

TEST(DeviceMemory, ExhaustionThenReuse) {
  Device dev(small_config());
  std::vector<DevicePtr> ptrs;
  // Allocate until full.
  try {
    while (true) ptrs.push_back(dev.mem_alloc(64 << 10));
  } catch (const DeviceError&) {
  }
  EXPECT_GE(ptrs.size(), 15u);
  for (auto p : ptrs) dev.mem_free(p);
  // After freeing everything, a full-arena allocation must succeed again
  // (free-list coalescing).
  auto big = dev.mem_alloc((1 << 20) - 256);
  dev.mem_free(big);
}

TEST(DeviceMemory, CoalescingAcrossFreeOrder) {
  Device dev(small_config());
  auto a = dev.mem_alloc(256 << 10);
  auto b = dev.mem_alloc(256 << 10);
  auto c = dev.mem_alloc(256 << 10);
  // Free middle first, then neighbours: coalescing must merge all three.
  dev.mem_free(b);
  dev.mem_free(a);
  dev.mem_free(c);
  auto big = dev.mem_alloc(768 << 10);
  dev.mem_free(big);
}

TEST(DeviceMemory, DoubleFreeThrows) {
  Device dev(small_config());
  auto p = dev.mem_alloc(100);
  dev.mem_free(p);
  EXPECT_THROW(dev.mem_free(p), DeviceError);
}

TEST(DeviceMemory, InvalidFreeThrows) {
  Device dev(small_config());
  EXPECT_THROW(dev.mem_free(12345), DeviceError);
}

TEST(DeviceMemory, ZeroByteAllocationIsValid) {
  Device dev(small_config());
  auto p = dev.mem_alloc(0);
  dev.mem_free(p);
}

TEST(DeviceMemory, MemcpyRoundTrip) {
  Device dev(small_config());
  std::vector<double> in{1.5, -2.5, 3.25};
  auto p = dev.mem_alloc(in.size() * sizeof(double));
  dev.memcpy_h2d(p, in.data(), in.size() * sizeof(double));
  std::vector<double> out(3);
  dev.memcpy_d2h(out.data(), p, out.size() * sizeof(double));
  EXPECT_EQ(in, out);
  dev.mem_free(p);
}

TEST(DeviceMemory, MemsetFillsBytes) {
  Device dev(small_config());
  auto p = dev.mem_alloc(16);
  dev.memset_d(p, std::byte{0xAB}, 16);
  std::vector<std::byte> out(16);
  dev.memcpy_d2h(out.data(), p, 16);
  for (auto b : out) EXPECT_EQ(b, std::byte{0xAB});
  dev.mem_free(p);
}

TEST(DeviceMemory, OutOfBoundsAccessThrows) {
  Device dev(small_config());
  std::byte buf[16];
  EXPECT_THROW(dev.memcpy_d2h(buf, (1 << 20) - 8, 16), DeviceError);
  EXPECT_THROW(dev.at(kNullPtr, 1), DeviceError);
}

TEST(DeviceMemory, StatsTrackUsage) {
  Device dev(small_config());
  auto p = dev.mem_alloc(1000);
  auto q = dev.mem_alloc(1000);
  dev.mem_free(p);
  const auto s = dev.stats();
  EXPECT_EQ(s.allocs, 2u);
  EXPECT_EQ(s.frees, 1u);
  EXPECT_GT(s.peak_bytes_in_use, s.bytes_in_use);
  dev.mem_free(q);
}

// Property test: random alloc/free sequences never hand out overlapping
// blocks and always restore the full arena.
class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, NoOverlapAndFullRecovery) {
  Device dev(small_config());
  const auto initial_free = dev.bytes_free();
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::size_t> size_dist(1, 8192);
  std::vector<std::pair<DevicePtr, std::size_t>> live;

  for (int step = 0; step < 400; ++step) {
    const bool do_alloc = live.empty() || (rng() % 3) != 0;
    if (do_alloc) {
      const auto size = size_dist(rng);
      try {
        const auto p = dev.mem_alloc(size);
        for (const auto& [q, qsize] : live) {
          const bool disjoint = p + size <= q || q + qsize <= p;
          ASSERT_TRUE(disjoint) << "overlapping allocation";
        }
        live.emplace_back(p, size);
      } catch (const DeviceError&) {
        // Arena full: acceptable.
      }
    } else {
      const auto idx = rng() % live.size();
      dev.mem_free(live[idx].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  for (const auto& [p, size] : live) dev.mem_free(p);
  EXPECT_EQ(dev.bytes_free(), initial_free);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---- kernels ---------------------------------------------------------------

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : dev_(small_config()) { register_builtin_kernels(dev_); }

  DevicePtr upload(const std::vector<double>& v) {
    auto p = dev_.mem_alloc(v.size() * sizeof(double));
    dev_.memcpy_h2d(p, v.data(), v.size() * sizeof(double));
    return p;
  }

  std::vector<double> download(DevicePtr p, std::size_t n) {
    std::vector<double> v(n);
    dev_.memcpy_d2h(v.data(), p, n * sizeof(double));
    return v;
  }

  Device dev_;
};

TEST_F(KernelTest, VectorAdd) {
  auto a = upload({1, 2, 3, 4});
  auto b = upload({10, 20, 30, 40});
  auto c = dev_.mem_alloc(4 * sizeof(double));
  util::ByteWriter w;
  w.put<std::uint64_t>(c);
  w.put<std::uint64_t>(a);
  w.put<std::uint64_t>(b);
  w.put<std::uint64_t>(4);
  dev_.launch("vector_add", {1, 1, 1}, {4, 1, 1}, w.bytes());
  EXPECT_EQ(download(c, 4), (std::vector<double>{11, 22, 33, 44}));
}

TEST_F(KernelTest, Saxpy) {
  auto y = upload({1, 1, 1});
  auto x = upload({1, 2, 3});
  util::ByteWriter w;
  w.put<std::uint64_t>(y);
  w.put<std::uint64_t>(x);
  w.put<double>(2.0);
  w.put<std::uint64_t>(3);
  dev_.launch("saxpy", {1, 1, 1}, {3, 1, 1}, w.bytes());
  EXPECT_EQ(download(y, 3), (std::vector<double>{3, 5, 7}));
}

TEST_F(KernelTest, Dot) {
  auto a = upload({1, 2, 3});
  auto b = upload({4, 5, 6});
  auto out = dev_.mem_alloc(sizeof(double));
  util::ByteWriter w;
  w.put<std::uint64_t>(out);
  w.put<std::uint64_t>(a);
  w.put<std::uint64_t>(b);
  w.put<std::uint64_t>(3);
  dev_.launch("dot", {1, 1, 1}, {3, 1, 1}, w.bytes());
  EXPECT_DOUBLE_EQ(download(out, 1)[0], 32.0);
}

TEST_F(KernelTest, Matmul) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  auto a = upload({1, 2, 3, 4});
  auto b = upload({5, 6, 7, 8});
  auto c = dev_.mem_alloc(4 * sizeof(double));
  util::ByteWriter w;
  w.put<std::uint64_t>(c);
  w.put<std::uint64_t>(a);
  w.put<std::uint64_t>(b);
  w.put<std::uint64_t>(2);
  w.put<std::uint64_t>(2);
  w.put<std::uint64_t>(2);
  dev_.launch("matmul", {1, 1, 1}, {4, 1, 1}, w.bytes());
  EXPECT_EQ(download(c, 4), (std::vector<double>{19, 22, 43, 50}));
}

TEST_F(KernelTest, ReduceSumAndFill) {
  auto dst = dev_.mem_alloc(8 * sizeof(double));
  util::ByteWriter wf;
  wf.put<std::uint64_t>(dst);
  wf.put<double>(2.5);
  wf.put<std::uint64_t>(8);
  dev_.launch("fill", {1, 1, 1}, {8, 1, 1}, wf.bytes());

  auto out = dev_.mem_alloc(sizeof(double));
  util::ByteWriter wr;
  wr.put<std::uint64_t>(out);
  wr.put<std::uint64_t>(dst);
  wr.put<std::uint64_t>(8);
  dev_.launch("reduce_sum", {1, 1, 1}, {8, 1, 1}, wr.bytes());
  EXPECT_DOUBLE_EQ(download(out, 1)[0], 20.0);
}

TEST_F(KernelTest, UnknownKernelThrows) {
  EXPECT_THROW(dev_.launch("nope", {1, 1, 1}, {1, 1, 1}, {}),
               DeviceError);
}

TEST_F(KernelTest, HasKernel) {
  EXPECT_TRUE(dev_.has_kernel("vector_add"));
  EXPECT_FALSE(dev_.has_kernel("nope"));
}

TEST_F(KernelTest, CustomKernelRegistration) {
  dev_.register_kernel("touch", Kernel{[](KernelContext& ctx) {
                                         *ctx.span<double>(
                                             ctx.arg_reader()
                                                 .get<std::uint64_t>(),
                                             1) = 7.0;
                                       },
                                       nullptr});
  auto p = dev_.mem_alloc(sizeof(double));
  util::ByteWriter w;
  w.put<std::uint64_t>(p);
  dev_.launch("touch", {1, 1, 1}, {1, 1, 1}, w.bytes());
  EXPECT_DOUBLE_EQ(download(p, 1)[0], 7.0);
}

TEST_F(KernelTest, NullKernelRegistrationThrows) {
  EXPECT_THROW(dev_.register_kernel("bad", Kernel{nullptr, nullptr}),
               DeviceError);
}

TEST_F(KernelTest, LaunchCountsInStats) {
  auto dst = dev_.mem_alloc(sizeof(double));
  util::ByteWriter w;
  w.put<std::uint64_t>(dst);
  w.put<double>(0.0);
  w.put<std::uint64_t>(1);
  dev_.launch("fill", {1, 1, 1}, {1, 1, 1}, w.bytes());
  EXPECT_EQ(dev_.stats().kernels_launched, 1u);
}

// ---- driver API ------------------------------------------------------------

TEST(DriverApi, SuccessPath) {
  Device dev(small_config());
  register_builtin_kernels(dev);
  DevicePtr p = kNullPtr;
  EXPECT_EQ(driver::mem_alloc(dev, 64, &p), driver::Status::kSuccess);
  double x = 3.0;
  EXPECT_EQ(driver::memcpy_h2d(dev, p, &x, sizeof(x)),
            driver::Status::kSuccess);
  double y = 0.0;
  EXPECT_EQ(driver::memcpy_d2h(dev, &y, p, sizeof(y)),
            driver::Status::kSuccess);
  EXPECT_DOUBLE_EQ(y, 3.0);
  EXPECT_EQ(driver::mem_free(dev, p), driver::Status::kSuccess);
}

TEST(DriverApi, ErrorMapping) {
  Device dev(small_config());
  DevicePtr p = kNullPtr;
  EXPECT_EQ(driver::mem_alloc(dev, 1 << 30, &p),
            driver::Status::kOutOfMemory);
  EXPECT_EQ(driver::mem_alloc(dev, 10, nullptr),
            driver::Status::kInvalidValue);
  EXPECT_EQ(driver::mem_free(dev, 777), driver::Status::kInvalidValue);
  EXPECT_EQ(driver::launch_kernel(dev, "ghost", {1, 1, 1}, {1, 1, 1}, {}),
            driver::Status::kNotFound);
  EXPECT_EQ(driver::memcpy_h2d(dev, 0, nullptr, 4),
            driver::Status::kInvalidValue);
}

TEST(DriverApi, StatusNames) {
  EXPECT_STREQ(driver::status_name(driver::Status::kSuccess), "success");
  EXPECT_STREQ(driver::status_name(driver::Status::kOutOfMemory),
               "out_of_memory");
}

TEST(DeviceTiming, CostModelConsumesTime) {
  DeviceConfig cfg;
  cfg.memory_bytes = 1 << 20;
  cfg.time_scale = 1.0;
  Device dev(cfg);
  dev.register_kernel("slow",
                      Kernel{[](KernelContext&) {},
                             [](const KernelContext&) {
                               return std::chrono::nanoseconds(20'000'000);
                             }});
  const auto start = dac::simtime::now();
  dev.launch("slow", {1, 1, 1}, {1, 1, 1}, {});
  EXPECT_GE(dac::simtime::now() - start,
            std::chrono::milliseconds(15));
}

TEST(DeviceTiming, TimeScaleZeroDisablesCost) {
  Device dev(small_config());
  dev.register_kernel("slow",
                      Kernel{[](KernelContext&) {},
                             [](const KernelContext&) {
                               return std::chrono::nanoseconds(50'000'000);
                             }});
  const auto start = dac::simtime::now();
  dev.launch("slow", {1, 1, 1}, {1, 1, 1}, {});
  EXPECT_LT(dac::simtime::now() - start,
            std::chrono::milliseconds(20));
}

}  // namespace
}  // namespace dac::gpusim
