// Virtual-time tests: the clock contract itself, and mode equivalence at the
// fabric level — the same traffic must produce the same per-pair delivery
// order and the same fault accounting whether time is real or discrete-event.
#include "simtime/clock.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "faults/fault_plan.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"
#include "vnet/fabric.hpp"

namespace dac::simtime {
namespace {

using namespace std::chrono_literals;

// Forces a clock mode for one test, restoring the ambient mode (whatever
// DACSCHED_CLOCK picked) afterwards. Both directions are exercised on
// purpose: the equivalence tests below run their RealTime leg even when the
// whole suite runs under DACSCHED_CLOCK=virtual, and vice versa.
class ModeGuard {
 public:
  explicit ModeGuard(Mode m) : prev_(Clock::instance().mode()) {
    if (prev_ != m) Clock::instance().set_mode(m);
  }
  ~ModeGuard() {
    if (Clock::instance().mode() != prev_) Clock::instance().set_mode(prev_);
  }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  Mode prev_;
};

TEST(VirtualClock, SleepAdvancesVirtualTimeExactly) {
  ModeGuard de(Mode::kDiscreteEvent);
  const auto wall0 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)
  const auto v0 = now();
  sleep_for(5s);  // NOLINT-DACSCHED(sleep-poll)
  const auto v1 = now();
  const auto wall1 = std::chrono::steady_clock::now();  // NOLINT-DACSCHED(raw-clock)
  // Virtual advance is exact — the clock jumps to the registered deadline,
  // it does not approximate it.
  EXPECT_EQ(v1 - v0, 5s);
  // Five virtual seconds must cost far less than five real ones; allow a
  // generous margin for stall-rescue on a loaded CI box.
  EXPECT_LT(wall1 - wall0, 2s);
}

TEST(VirtualClock, NowIsMonotonicAcrossModeSwitch) {
  const auto before = now();
  ModeGuard de(Mode::kDiscreteEvent);
  EXPECT_GE(now(), before);
}

TEST(VirtualClock, StatsCountAdvancesAndFires) {
  ModeGuard de(Mode::kDiscreteEvent);
  const auto s0 = Clock::instance().stats();
  sleep_for(10ms);  // NOLINT-DACSCHED(sleep-poll)
  sleep_for(10ms);  // NOLINT-DACSCHED(sleep-poll)
  const auto s1 = Clock::instance().stats();
  EXPECT_GE(s1.advances - s0.advances, 2u);
  EXPECT_GE(s1.waiters_fired - s0.waiters_fired, 2u);
}

TEST(VirtualClock, TimedWaitTimesOutAtExactVirtualDeadline) {
  ModeGuard de(Mode::kDiscreteEvent);
  dac::Mutex mu{"test.vtime"};
  dac::CondVar cv;
  const auto t0 = now();
  dac::UniqueLock lock(mu);
  const auto status = cv.wait_for(lock, 200ms);
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_EQ(now() - t0, 200ms);
}

TEST(VirtualClock, NotifyWakesTimedWaitBeforeDeadline) {
  ModeGuard de(Mode::kDiscreteEvent);
  dac::Mutex mu{"test.vtime"};
  dac::CondVar cv;
  bool ready = false;
  // t0 before the poker exists: the main thread is not an actor, so the
  // clock may legitimately run the poker's whole 50 ms before main gets
  // another instruction in.
  const auto t0 = now();
  Clock::instance().actor_started();
  std::thread poker([&] {
    AdoptScope actor;
    sleep_for(50ms);  // NOLINT-DACSCHED(sleep-poll)
    dac::ScopedLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    dac::UniqueLock lock(mu);
    while (!ready) {
      ASSERT_EQ(cv.wait_for(lock, 10s), std::cv_status::no_timeout);
    }
  }
  EXPECT_GE(now() - t0, 50ms);
  EXPECT_LT(now() - t0, 10s);
  {
    ExternalWaitScope quiescent;
    poker.join();
  }
}

TEST(VirtualClock, ActorsWakeInDeadlineOrder) {
  ModeGuard de(Mode::kDiscreteEvent);
  dac::Mutex mu{"test.vtime"};
  std::vector<int> order;
  std::vector<std::thread> sleepers;
  const int delays_ms[] = {30, 10, 20};
  // Register all three actors before spawning any: otherwise the clock can
  // run sleeper 0 to completion while main (not an actor) is still between
  // loop iterations, and the wake order degenerates to spawn order.
  for (int i = 0; i < 3; ++i) Clock::instance().actor_started();
  for (int i = 0; i < 3; ++i) {
    sleepers.emplace_back([&, i] {
      AdoptScope actor;
      sleep_for(std::chrono::milliseconds(delays_ms[i]));  // NOLINT-DACSCHED(sleep-poll)
      dac::ScopedLock lock(mu);
      order.push_back(i);
    });
  }
  {
    ExternalWaitScope quiescent;
    for (auto& t : sleepers) t.join();
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);  // 10 ms
  EXPECT_EQ(order[1], 2);  // 20 ms
  EXPECT_EQ(order[2], 0);  // 30 ms
}

// ---- fabric-level mode equivalence -----------------------------------------

util::Bytes payload(std::size_t n) { return util::Bytes(n); }

// In DiscreteEvent mode no virtual time passes while the sender runs, so
// delivery timing is exact arithmetic on the network model.
TEST(FabricVirtualTime, DeliveryChargesExactModelDelay) {
  ModeGuard de(Mode::kDiscreteEvent);
  vnet::NetworkModel m;
  m.latency = std::chrono::microseconds(30000);
  m.bytes_per_second = 1e6;  // 50 KB -> exactly 50 ms of wire time
  vnet::Fabric fabric(m);
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  const auto t0 = now();
  fabric.send(vnet::Message{vnet::Address{0, 0}, vnet::Address{1, 0}, 1,
                            payload(50000)});
  ASSERT_TRUE(box->pop_for(5s).has_value());
  EXPECT_EQ(now() - t0, 30ms + 50ms);
  fabric.shutdown();
}

TEST(FabricVirtualTime, LinkSerializationIsExact) {
  ModeGuard de(Mode::kDiscreteEvent);
  vnet::NetworkModel m;
  m.latency = std::chrono::microseconds(1000);
  m.bytes_per_second = 1e6;
  vnet::Fabric fabric(m);
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(vnet::Address{1, 0}, box);

  // Two messages on one pair: the second waits for the first's wire time
  // (per-pair FIFO over a stream transport), so the pair is serialized and
  // the arrival instants are exact.
  const auto t0 = now();
  fabric.send(vnet::Message{vnet::Address{0, 0}, vnet::Address{1, 0}, 1,
                            payload(10000)});  // 10 ms wire
  fabric.send(vnet::Message{vnet::Address{0, 0}, vnet::Address{1, 0}, 2,
                            payload(10000)});
  ASSERT_TRUE(box->pop_for(5s).has_value());
  const auto first = now() - t0;
  ASSERT_TRUE(box->pop_for(5s).has_value());
  const auto second = now() - t0;
  EXPECT_EQ(first, 1ms + 10ms);
  EXPECT_EQ(second, 1ms + 20ms);
  fabric.shutdown();
}

// One run of seeded faulty traffic through a fabric. Sends come from a
// single thread, so the fault plan's decision stream is a pure function of
// the seed — which is what makes the two modes comparable.
struct TrafficResult {
  // Arrival order projected per source node (cross-pair interleaving is
  // timing-dependent in RealTime mode; per-pair FIFO is the guarantee).
  std::vector<std::vector<std::uint32_t>> per_source;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_injected = 0;
  std::uint64_t duplicated = 0;
  std::vector<faults::FaultEvent> fault_trace;
};

TrafficResult run_seeded_traffic(Mode mode, std::uint64_t seed) {
  ModeGuard guard(mode);
  TrafficResult out;
  vnet::NetworkModel m;
  m.latency = std::chrono::microseconds(100);
  m.bytes_per_second = 1e8;
  vnet::Fabric fabric(m);
  faults::FaultRates rates;
  rates.drop = 0.1;
  rates.duplicate = 0.1;
  rates.delay = 0.2;
  rates.max_extra_delay = std::chrono::microseconds(500);
  auto plan = std::make_shared<faults::FaultPlan>(seed, rates);
  fabric.set_fault_injector(plan);

  const vnet::Address dst{3, 0};
  auto box = std::make_shared<vnet::Mailbox>();
  fabric.register_mailbox(dst, box);

  constexpr int kSources = 3;
  constexpr int kMessages = 120;
  int expected = 0;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    fabric.send(vnet::Message{
        vnet::Address{static_cast<vnet::NodeId>(i % kSources), 0}, dst, i,
        payload(64 + i)});
  }
  const auto counters = plan->counters();
  expected = kMessages - static_cast<int>(counters.drops) +
             static_cast<int>(counters.duplicates);

  out.per_source.resize(kSources);
  for (int got = 0; got < expected; ++got) {
    auto msg = box->pop_for(5s);
    if (!msg.has_value()) break;
    out.per_source[msg->from.node].push_back(msg->type);
  }
  out.delivered = fabric.messages_delivered();
  out.dropped_injected = fabric.messages_dropped_injected();
  out.duplicated = fabric.messages_duplicated();
  out.fault_trace = plan->trace();
  fabric.shutdown();
  return out;
}

class FabricModeEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FabricModeEquivalence, SeededFaultTrafficMatchesAcrossModes) {
  const std::uint64_t seed = GetParam();
  const auto rt = run_seeded_traffic(Mode::kRealTime, seed);
  const auto de = run_seeded_traffic(Mode::kDiscreteEvent, seed);

  // The injected decision stream is seed-driven, not time-driven: identical
  // drops, duplicates, delays — event by event.
  EXPECT_EQ(rt.fault_trace, de.fault_trace);
  EXPECT_EQ(rt.dropped_injected, de.dropped_injected);
  EXPECT_EQ(rt.duplicated, de.duplicated);
  EXPECT_EQ(rt.delivered, de.delivered);
  // Per-pair FIFO holds in both modes: each source's messages arrive in send
  // order (duplicates included) regardless of clock backend.
  ASSERT_EQ(rt.per_source.size(), de.per_source.size());
  for (std::size_t s = 0; s < rt.per_source.size(); ++s) {
    EXPECT_EQ(rt.per_source[s], de.per_source[s]) << "source " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricModeEquivalence,
                         ::testing::Values(0xA11CEull, 0xB0Bull));

}  // namespace
}  // namespace dac::simtime
