// Service-runtime tests: Caller retransmission and deadlines, ServiceLoop
// duplicate suppression and execution classes, backoff schedules, and the
// per-RPC metrics surface — plus a cluster-level check that read-only
// requests do not queue behind the server's mutating lane.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>

#include "simtime/clock.hpp"
#include "core/cluster.hpp"
#include "util/sync.hpp"
#include "svc/backoff.hpp"
#include "svc/caller.hpp"
#include "svc/metrics.hpp"
#include "svc/service_loop.hpp"
#include "svc/wire.hpp"
#include "vnet/fabric.hpp"
#include "vnet/node.hpp"

namespace dac::svc {
namespace {

using namespace std::chrono_literals;
using torque::MsgType;
using torque::ReplyCode;

// A deadline is "the callee never answered"; a CallError is "the callee
// answered with a failure". Conflating them would make retry loops swallow
// real failures.
static_assert(!std::is_base_of_v<CallError, DeadlineError>);
static_assert(std::is_base_of_v<util::ProtocolError, CallError>);
static_assert(std::is_base_of_v<util::ProtocolError, DeadlineError>);

vnet::NetworkModel fast_model() {
  vnet::NetworkModel m;
  m.latency = std::chrono::microseconds(50);
  m.loopback_latency = std::chrono::microseconds(5);
  m.bytes_per_second = 5e9;
  return m;
}

class SvcTest : public ::testing::Test {
 protected:
  SvcTest()
      : fabric_(fast_model()),
        node_(0, "n0", fabric_, std::chrono::microseconds(0)) {}

  vnet::Fabric fabric_;
  vnet::Node node_;
};

TEST_F(SvcTest, CallerRetransmitsUntilServerAppears) {
  // The server's address exists, but its endpoint registers only after the
  // first transmission was dropped — the retransmit must get through.
  const auto server_addr = node_.allocate_address();

  std::thread server([&] {
    dac::simtime::sleep_for(30ms);  // NOLINT-DACSCHED(sleep-poll)
    vnet::Endpoint ep(fabric_, server_addr);
    auto msg = ep.recv_for(5000ms);
    ASSERT_TRUE(msg.has_value());
    const auto req = parse_request(*msg);
    util::ByteWriter w;
    w.put<std::int32_t>(42);
    reply_ok(ep, req, std::move(w).take());
    // Drain retransmitted duplicates until the client is done.
    while (ep.try_recv()) {
    }
  });

  RetryPolicy rp;
  rp.max_attempts = 20;
  rp.initial_backoff = 5ms;
  rp.max_backoff = 20ms;
  const Caller caller(node_, server_addr, rp);
  const auto reply = caller.call(MsgType::kStatJobs, {}, {.deadline = 5000ms});
  util::ByteReader r(reply);
  EXPECT_EQ(r.get<std::int32_t>(), 42);

  server.join();
  // The drop observability satellite: the pre-registration sends show up in
  // the fabric's per-destination drop counter.
  EXPECT_GE(fabric_.drops_to(server_addr), 1u);
}

TEST_F(SvcTest, DeadlineExceededThrowsDeadlineNotCallError) {
  const auto nowhere = node_.allocate_address();  // never registered
  const Caller caller(node_, nowhere, RetryPolicy::none());
  try {
    (void)caller.call(MsgType::kStatJobs, {}, {.deadline = 40ms});
    FAIL() << "expected DeadlineError";
  } catch (const CallError&) {
    FAIL() << "a silent peer must not surface as CallError";
  } catch (const DeadlineError&) {
    // expected
  }
}

TEST_F(SvcTest, ErrorReplySurfacesAsCallErrorWithCode) {
  auto ep = node_.open_endpoint();
  ServiceLoop loop(*ep, ServiceConfig{.name = "err"});
  loop.on(MsgType::kDeleteJob, ExecClass::kMutating,
          [](const Request&, Responder& resp) {
            resp.error(ReplyCode::kUnknownJob, "no such job");
          });
  std::thread t([&] { loop.run(); });

  const Caller caller(node_, ep->address(), RetryPolicy::none());
  try {
    (void)caller.call(MsgType::kDeleteJob, {}, {.deadline = 2000ms});
    FAIL() << "expected CallError";
  } catch (const CallError& e) {
    EXPECT_EQ(e.code(), ReplyCode::kUnknownJob);
  }
  ep->close();
  t.join();
}

TEST_F(SvcTest, DuplicateRequestExecutesOnceAnswersTwice) {
  auto ep = node_.open_endpoint();
  std::atomic<int> executions{0};
  ServiceLoop loop(*ep, ServiceConfig{.name = "dedup"});
  loop.on(MsgType::kSubmit, ExecClass::kMutating,
          [&](const Request&, Responder& resp) {
            executions.fetch_add(1);
            util::ByteWriter w;
            w.put<std::uint64_t>(7);
            resp.ok(std::move(w).take());
          });
  std::thread t([&] { loop.run(); });

  auto client = node_.open_endpoint();
  const auto id = next_request_id();
  const auto env = envelope(id, {});
  client->send(ep->address(), as_u32(MsgType::kSubmit), env);
  client->send(ep->address(), as_u32(MsgType::kSubmit), env);

  // Both the original and the duplicate get the same full reply.
  for (int i = 0; i < 2; ++i) {
    auto msg = client->recv_for(5000ms);
    ASSERT_TRUE(msg.has_value()) << "reply " << i;
    auto body = parse_reply(*msg, id);
    ASSERT_TRUE(body.has_value());
    util::ByteReader r(*body);
    EXPECT_EQ(r.get<std::uint64_t>(), 7u);
  }
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(loop.deduped(), 1u);

  ep->close();
  t.join();
}

TEST_F(SvcTest, ReadOnlyRunsConcurrentlyWithMutatingLane) {
  // The read-only handler blocks until the mutating handler runs. With a
  // read pool this completes (the read runs on a worker while the mutating
  // request runs on the loop thread); fully serialized it would deadlock.
  auto ep = node_.open_endpoint();
  dac::Mutex mu{"test.mut_ran"};
  dac::CondVar cv;
  bool mut_ran = false;

  ServiceConfig cfg;
  cfg.name = "pool";
  cfg.read_workers = 1;
  ServiceLoop loop(*ep, cfg);
  loop.on(MsgType::kStatJobs, ExecClass::kReadOnly,
          [&](const Request&, Responder& resp) {
            const auto deadline = dac::simtime::now() + 5000ms;
            dac::UniqueLock lock(mu);
            bool ok = true;
            while (!mut_ran) {
              if (cv.wait_until(lock, deadline) == std::cv_status::timeout &&
                  !mut_ran) {
                ok = false;
                break;
              }
            }
            lock.unlock();
            if (ok) {
              resp.ok();
            } else {
              resp.error(ReplyCode::kError, "mutating lane never ran");
            }
          });
  loop.on(MsgType::kSubmit, ExecClass::kMutating,
          [&](const Request&, Responder& resp) {
            {
              dac::ScopedLock lock(mu);
              mut_ran = true;
            }
            cv.notify_all();
            resp.ok();
          });
  std::thread t([&] { loop.run(); });

  std::thread reader([&] {
    const Caller caller(node_, ep->address(), RetryPolicy::none());
    EXPECT_NO_THROW(
        (void)caller.call(MsgType::kStatJobs, {}, {.deadline = 8000ms}));
  });
  dac::simtime::sleep_for(20ms);  // let the read reach the pool  // NOLINT-DACSCHED(sleep-poll)
  const Caller caller(node_, ep->address(), RetryPolicy::none());
  EXPECT_NO_THROW(
      (void)caller.call(MsgType::kSubmit, {}, {.deadline = 8000ms}));

  reader.join();
  ep->close();
  t.join();
}

TEST_F(SvcTest, HandlerExceptionBecomesErrorReply) {
  auto ep = node_.open_endpoint();
  ServiceLoop loop(*ep, ServiceConfig{.name = "throwing"});
  loop.on(MsgType::kAlterJob, ExecClass::kMutating,
          [](const Request&, Responder&) {
            throw std::runtime_error("handler exploded");
          });
  std::thread t([&] { loop.run(); });

  const Caller caller(node_, ep->address(), RetryPolicy::none());
  EXPECT_THROW((void)caller.call(MsgType::kAlterJob, {}, {.deadline = 2000ms}),
               CallError);
  ep->close();
  t.join();
}

TEST(BackoffTest, GrowsAndCaps) {
  BackoffPolicy p;
  p.initial = std::chrono::microseconds(100);
  p.multiplier = 2.0;
  p.cap = std::chrono::microseconds(500);
  Backoff b(p);
  EXPECT_EQ(b.next().count(), 100);
  EXPECT_EQ(b.next().count(), 200);
  EXPECT_EQ(b.next().count(), 400);
  EXPECT_EQ(b.next().count(), 500);  // capped
  EXPECT_EQ(b.next().count(), 500);
  b.reset();
  EXPECT_EQ(b.next().count(), 100);
}

TEST(BackoffTest, JitterStaysWithinBounds) {
  BackoffPolicy p;
  p.initial = std::chrono::microseconds(1000);
  p.multiplier = 1.0;
  p.cap = std::chrono::microseconds(1000);
  p.jitter = 0.25;
  Backoff b(p, /*seed=*/42);
  for (int i = 0; i < 100; ++i) {
    const auto d = b.next().count();
    EXPECT_GE(d, 750);
    EXPECT_LE(d, 1250);
  }
}

TEST(MetricsTest, RecordsCountsErrorsAndPercentiles) {
  MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.record(as_u32(MsgType::kSubmit), static_cast<double>(i));
  }
  reg.record(as_u32(MsgType::kDeleteJob), 5.0, /*error=*/true);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.rpcs.size(), 2u);
  EXPECT_EQ(snap.total_calls(), 101u);

  const auto* submit = snap.find(as_u32(MsgType::kSubmit));
  ASSERT_NE(submit, nullptr);
  EXPECT_EQ(submit->calls, 100u);
  EXPECT_EQ(submit->errors, 0u);
  EXPECT_NEAR(submit->mean_ms, 50.5, 0.1);
  EXPECT_GE(submit->p99_ms, submit->p50_ms);
  EXPECT_GE(submit->max_ms, submit->p99_ms);
  EXPECT_DOUBLE_EQ(submit->max_ms, 100.0);
  EXPECT_EQ(submit->name, msg_type_name(as_u32(MsgType::kSubmit)));

  const auto* del = snap.find(as_u32(MsgType::kDeleteJob));
  ASSERT_NE(del, nullptr);
  EXPECT_EQ(del->errors, 1u);

  const auto table = render_metrics(snap);
  EXPECT_NE(table.find(msg_type_name(as_u32(MsgType::kSubmit))),
            std::string::npos);
}

TEST(MsgTypeNameTest, KnownAndUnknownTypes) {
  EXPECT_EQ(msg_type_name(as_u32(MsgType::kSubmit)), "SUBMIT");
  // Unknown codes render as hex instead of crashing or aliasing.
  const auto unknown = msg_type_name(0xDEADBEEF);
  EXPECT_NE(unknown.find("DEADBEEF"), std::string::npos);
}

// ---- cluster level --------------------------------------------------------

TEST(SvcClusterTest, StatJobsDoesNotQueueBehindMutatingLane) {
  auto cfg = core::DacClusterConfig::fast();
  cfg.compute_nodes = 1;
  cfg.accel_nodes = 1;
  cfg.svc.server_read_workers = 2;
  // Make every mutating request expensive so a serialized qstat would be
  // stuck behind the submit flood for a long time.
  cfg.timing.server_service_cost = std::chrono::microseconds(10'000);
  core::DacCluster cluster(cfg);

  std::atomic<bool> flooding{true};
  std::thread flood([&] {
    for (int i = 0; i < 30; ++i) {
      util::ByteWriter w;
      w.put<std::uint64_t>(1);
      (void)cluster.submit_program(core::kSleepProgram, 1, 0,
                                   std::move(w).take());
    }
    flooding = false;
  });

  // Issue reads while the flood is in flight; each one must come back even
  // though the mutating lane is busy the whole time.
  int reads = 0;
  auto ifl = cluster.client();
  while (flooding && reads < 50) {
    (void)ifl.stat_jobs();
    ++reads;
  }
  flood.join();
  EXPECT_GT(reads, 0);

  // The server recorded per-RPC metrics for both lanes.
  const auto snap = cluster.metrics_snapshot();
  const auto* submit = snap.find(as_u32(MsgType::kSubmit));
  ASSERT_NE(submit, nullptr);
  EXPECT_EQ(submit->calls, 30u);
  const auto* stat = snap.find(as_u32(MsgType::kStatJobs));
  ASSERT_NE(stat, nullptr);
  EXPECT_GE(stat->calls, static_cast<std::uint64_t>(reads));
  EXPECT_GT(stat->p50_ms, 0.0);
}

}  // namespace
}  // namespace dac::svc
