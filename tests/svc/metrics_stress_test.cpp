// TSan-targeted stress test: eight writer threads hammer one
// MetricsRegistry while readers continuously snapshot it. Under
// -fsanitize=thread this flushes out any unguarded access in the registry;
// in any build it verifies that no recorded call is lost or double-counted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "svc/metrics.hpp"

namespace dac::svc {
namespace {

TEST(MetricsStressTest, ConcurrentRecordAndSnapshotConserveCounts) {
  constexpr int kWriters = 8;
  constexpr int kReaders = 2;
  constexpr int kRecordsPerWriter = 2000;

  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots_taken{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = registry.snapshot();
        // Monotonicity under concurrency: a snapshot never exceeds the
        // total any writer could have recorded so far.
        EXPECT_LE(snap.total_calls(),
                  static_cast<std::uint64_t>(kWriters) * kRecordsPerWriter);
        snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Each writer uses its own type for half the records (per-type
      // accounting) and a shared type for the other half (contention on one
      // Series).
      const auto own_type = static_cast<std::uint32_t>(100 + w);
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        const bool shared = (i % 2) == 0;
        registry.record(shared ? 7u : own_type, 0.25 * (i % 8),
                        /*error=*/(i % 16) == 0);
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(snapshots_taken.load(), 0u);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.total_calls(),
            static_cast<std::uint64_t>(kWriters) * kRecordsPerWriter);

  const auto* shared_series = snap.find(7u);
  ASSERT_NE(shared_series, nullptr);
  EXPECT_EQ(shared_series->calls,
            static_cast<std::uint64_t>(kWriters) * kRecordsPerWriter / 2);

  std::uint64_t errors = 0;
  for (const auto& s : snap.rpcs) errors += s.errors;
  // i % 16 == 0 fires 125 times per writer over 2000 iterations.
  EXPECT_EQ(errors, static_cast<std::uint64_t>(kWriters) *
                        (kRecordsPerWriter / 16));

  for (int w = 0; w < kWriters; ++w) {
    const auto* own = snap.find(static_cast<std::uint32_t>(100 + w));
    ASSERT_NE(own, nullptr) << "writer " << w;
    EXPECT_EQ(own->calls, static_cast<std::uint64_t>(kRecordsPerWriter) / 2);
  }
}

}  // namespace
}  // namespace dac::svc
