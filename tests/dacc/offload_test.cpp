// DAC offload stack tests at the dacc layer: back-end daemon + front-end
// computation API over raw mini-MPI (no batch system), covering both
// attachment paths and the wire protocol's error handling.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "dacc/daemon.hpp"
#include "dacc/frontend.hpp"
#include "dacc/protocol.hpp"
#include "harness/scenario.hpp"
#include "vnet/cluster.hpp"

namespace dac::dacc {
namespace {

using namespace std::chrono_literals;
using minimpi::Comm;
using minimpi::Proc;

class OffloadTest : public ::testing::Test {
 protected:
  OffloadTest()
      : cluster_([] {
          vnet::ClusterTopology t;
          t.node_count = 6;
          t.network.latency = std::chrono::microseconds(50);
          t.network.bytes_per_second = 5e9;
          t.process_start_delay = std::chrono::microseconds(0);
          return t;
        }()),
        runtime_(cluster_) {
    register_daemon_executables(runtime_, devices_);
  }

  // Runs `body` as a compute-node process attached to `n` static daemons.
  void with_daemons(int n, std::function<void(Proc&, Comm&)> body) {
    static std::atomic<int> counter{0};
    const auto port = "test-port-" + std::to_string(counter.fetch_add(1));
    std::vector<vnet::NodeId> placement;
    for (int i = 0; i < n; ++i) placement.push_back(1 + i);
    util::ByteWriter args;
    args.put_string(port);
    args.put<std::uint64_t>(1);
    auto daemons =
        runtime_.launch_world(kStaticDaemonExe, placement,
                              std::move(args).take());

    runtime_.register_executable(
        "test_cn", [&body, port](Proc& p, const util::Bytes&) {
          Comm inter = p.comm_connect(port, p.self(), 0);
          Comm merged = p.intercomm_merge(inter, false);
          body(p, merged);
          for (int r = 1; r < merged.size(); ++r) {
            p.send(merged, r, kCtlShutdown, {});
          }
          p.barrier(merged);
        });
    auto cn = runtime_.launch_world("test_cn", {5}, {});
    cn.join();
    daemons.join();
  }

  vnet::Cluster cluster_;
  minimpi::Runtime runtime_;
  DeviceManager devices_;
};

TEST_F(OffloadTest, AllocFreeRoundTrip) {
  with_daemons(1, [](Proc& p, Comm& c) {
    const auto ptr = frontend::mem_alloc(p, c, 1, 4096);
    frontend::mem_free(p, c, 1, ptr);
  });
}

TEST_F(OffloadTest, MemcpyRoundTripPipelined) {
  with_daemons(1, [](Proc& p, Comm& c) {
    std::vector<double> data(10'000);
    std::iota(data.begin(), data.end(), 0.0);
    const auto bytes = data.size() * sizeof(double);
    const auto ptr = frontend::mem_alloc(p, c, 1, bytes);
    TransferOptions opts;
    opts.chunk_bytes = 4096;  // force many chunks
    opts.pipelined = true;
    frontend::memcpy_h2d(p, c, 1, ptr,
                         std::as_bytes(std::span(data)), opts);
    auto back = frontend::memcpy_d2h(p, c, 1, ptr, bytes);
    ASSERT_EQ(back.size(), bytes);
    const auto* d = reinterpret_cast<const double*>(back.data());
    for (std::size_t i = 0; i < data.size(); i += 997) {
      EXPECT_DOUBLE_EQ(d[i], data[i]);
    }
    frontend::mem_free(p, c, 1, ptr);
  });
}

TEST_F(OffloadTest, MemcpyRoundTripUnpipelined) {
  with_daemons(1, [](Proc& p, Comm& c) {
    std::vector<double> data(5'000, 1.5);
    const auto bytes = data.size() * sizeof(double);
    const auto ptr = frontend::mem_alloc(p, c, 1, bytes);
    TransferOptions opts;
    opts.chunk_bytes = 4096;
    opts.pipelined = false;  // ack per chunk
    frontend::memcpy_h2d(p, c, 1, ptr,
                         std::as_bytes(std::span(data)), opts);
    auto back = frontend::memcpy_d2h(p, c, 1, ptr, bytes);
    const auto* d = reinterpret_cast<const double*>(back.data());
    EXPECT_DOUBLE_EQ(d[4999], 1.5);
    frontend::mem_free(p, c, 1, ptr);
  });
}

TEST_F(OffloadTest, EmptyTransferIsFine) {
  with_daemons(1, [](Proc& p, Comm& c) {
    const auto ptr = frontend::mem_alloc(p, c, 1, 16);
    frontend::memcpy_h2d(p, c, 1, ptr, {});
    frontend::mem_free(p, c, 1, ptr);
  });
}

// Ported onto the Scenario harness: the same lifecycle, but through the
// whole system (qsub with acpn=1 -> daemon launch -> session API), with the
// trace confirming every accelerator op executed on the backend daemon as
// part of the submission's trace.
TEST(OffloadScenario, KernelLifecycle) {
  testing::Scenario s;
  s.compute_nodes(1).accel_nodes(1);
  s.program("kernel_lifecycle", [](core::JobContext& ctx) {
    auto& ses = ctx.session();
    auto acs = ses.ac_init();
    ASSERT_EQ(acs.size(), 1u);
    const auto ac = acs[0];
    std::vector<double> a{1, 2, 3};
    std::vector<double> b{4, 5, 6};
    const auto bytes = 3 * sizeof(double);
    const auto da = ses.ac_mem_alloc(ac, bytes);
    const auto db = ses.ac_mem_alloc(ac, bytes);
    const auto dc = ses.ac_mem_alloc(ac, bytes);
    ses.ac_memcpy_h2d(ac, da, std::as_bytes(std::span(a)));
    ses.ac_memcpy_h2d(ac, db, std::as_bytes(std::span(b)));
    const auto k = ses.ac_kernel_create(ac, "vector_add");
    util::ByteWriter args;
    args.put<std::uint64_t>(dc);
    args.put<std::uint64_t>(da);
    args.put<std::uint64_t>(db);
    args.put<std::uint64_t>(3);
    ses.ac_kernel_set_args(ac, k, std::move(args).take());
    ses.ac_kernel_run(ac, k, {1, 1, 1}, {3, 1, 1});
    auto out = ses.ac_memcpy_d2h(ac, dc, bytes);
    const auto* d = reinterpret_cast<const double*>(out.data());
    EXPECT_DOUBLE_EQ(d[0], 5.0);
    EXPECT_DOUBLE_EQ(d[2], 9.0);
    ses.ac_mem_free(ac, da);
    ses.ac_mem_free(ac, db);
    ses.ac_mem_free(ac, dc);
    ses.ac_finalize();
  });
  const auto id = s.submit_program("kernel_lifecycle", 1, /*acpn=*/1);
  ASSERT_TRUE(s.wait_job(id).has_value());
  const auto trace_id = s.await_job_trace(id);
  ASSERT_NE(trace_id, 0u);

  auto view = s.trace();
  // Every op of the lifecycle shows up as a backend span in the job's trace.
  for (const char* op : {"acd.mem_alloc", "acd.memcpy_h2d", "acd.kernel_create",
                         "acd.kernel_set_args", "acd.kernel_run",
                         "acd.memcpy_d2h", "acd.mem_free"}) {
    const auto* span = view.first(op);
    ASSERT_NE(span, nullptr) << op << " never reached the daemon";
    EXPECT_EQ(span->trace, trace_id) << op << " outside the job's trace";
  }
}

TEST_F(OffloadTest, UnknownKernelReportsNotFound) {
  with_daemons(1, [](Proc& p, Comm& c) {
    try {
      (void)frontend::kernel_create(p, c, 1, "no_such_kernel");
      FAIL() << "expected AcError";
    } catch (const AcError& e) {
      EXPECT_EQ(e.status(), Status::kNotFound);
    }
  });
}

TEST_F(OffloadTest, BadKernelHandleReportsInvalid) {
  with_daemons(1, [](Proc& p, Comm& c) {
    try {
      frontend::kernel_run(p, c, 1, 999, {1, 1, 1}, {1, 1, 1});
      FAIL() << "expected AcError";
    } catch (const AcError& e) {
      EXPECT_EQ(e.status(), Status::kInvalidValue);
    }
  });
}

TEST_F(OffloadTest, OutOfDeviceMemoryReported) {
  with_daemons(1, [](Proc& p, Comm& c) {
    try {
      (void)frontend::mem_alloc(p, c, 1, 1ull << 40);
      FAIL() << "expected AcError";
    } catch (const AcError& e) {
      EXPECT_EQ(e.status(), Status::kOutOfMemory);
    }
  });
}

TEST_F(OffloadTest, DoubleFreeReported) {
  with_daemons(1, [](Proc& p, Comm& c) {
    const auto ptr = frontend::mem_alloc(p, c, 1, 64);
    frontend::mem_free(p, c, 1, ptr);
    EXPECT_THROW(frontend::mem_free(p, c, 1, ptr), AcError);
  });
}

TEST_F(OffloadTest, DeviceInfo) {
  with_daemons(1, [](Proc& p, Comm& c) {
    const auto info = frontend::device_info(p, c, 1);
    EXPECT_EQ(info.name, "SimGPU");
    EXPECT_GT(info.bytes_free, 0u);
  });
}

TEST_F(OffloadTest, MultipleDaemonsIndependentDevices) {
  with_daemons(3, [](Proc& p, Comm& c) {
    // Same value written to each device at (likely) the same device ptr;
    // devices are per node, so no interference.
    std::vector<gpusim::DevicePtr> ptrs;
    for (int rank = 1; rank <= 3; ++rank) {
      const auto ptr = frontend::mem_alloc(p, c, rank, sizeof(double));
      const double v = 100.0 + rank;
      frontend::memcpy_h2d(p, c, rank, ptr,
                           std::as_bytes(std::span(&v, 1)));
      ptrs.push_back(ptr);
    }
    for (int rank = 1; rank <= 3; ++rank) {
      auto out = frontend::memcpy_d2h(
          p, c, rank, ptrs[static_cast<std::size_t>(rank - 1)],
          sizeof(double));
      const auto* d = reinterpret_cast<const double*>(out.data());
      EXPECT_DOUBLE_EQ(*d, 100.0 + rank);
    }
  });
}

TEST_F(OffloadTest, SpawnedDaemonPath) {
  // Dynamic attachment without the batch system: spawn + merge, then use.
  runtime_.register_executable(
      "spawner", [this](Proc& p, const util::Bytes&) {
        minimpi::WorldHandle children;
        Comm inter = p.comm_spawn(p.self(), 0, kSpawnedDaemonExe, {},
                                  {1, 2}, &children);
        Comm merged = p.intercomm_merge(inter, false);
        EXPECT_EQ(merged.rank, 0);
        EXPECT_EQ(merged.size(), 3);
        const auto ptr = frontend::mem_alloc(p, merged, 2, 128);
        frontend::mem_free(p, merged, 2, ptr);
        for (int r = 1; r < merged.size(); ++r) {
          p.send(merged, r, kCtlShutdown, {});
        }
        p.barrier(merged);
        children.join();
      });
  auto cn = runtime_.launch_world("spawner", {5}, {});
  cn.join();
}

}  // namespace
}  // namespace dac::dacc
