// Edge cases of the chunked transfer protocol: degenerate chunk sizes,
// exact-multiple and off-by-one payloads, large streamed D2H, and traffic to
// several daemons interleaved on one communicator.
#include <gtest/gtest.h>

#include <numeric>

#include "dacc/daemon.hpp"
#include "dacc/frontend.hpp"
#include "dacc/protocol.hpp"
#include "vnet/cluster.hpp"

namespace dac::dacc {
namespace {

using minimpi::Comm;
using minimpi::Proc;

class TransferEdgeTest : public ::testing::Test {
 protected:
  TransferEdgeTest()
      : cluster_([] {
          vnet::ClusterTopology t;
          t.node_count = 5;
          t.network.latency = std::chrono::microseconds(30);
          t.network.bytes_per_second = 5e9;
          t.process_start_delay = std::chrono::microseconds(0);
          return t;
        }()),
        runtime_(cluster_) {
    register_daemon_executables(runtime_, devices_);
  }

  void with_daemons(int n, std::function<void(Proc&, Comm&)> body) {
    static std::atomic<int> counter{100};
    const auto port = "edge-port-" + std::to_string(counter.fetch_add(1));
    std::vector<vnet::NodeId> placement;
    for (int i = 0; i < n; ++i) placement.push_back(1 + i);
    util::ByteWriter args;
    args.put_string(port);
    args.put<std::uint64_t>(1);
    auto daemons = runtime_.launch_world(kStaticDaemonExe, placement,
                                         std::move(args).take());
    runtime_.register_executable(
        "edge_cn", [&body, port](Proc& p, const util::Bytes&) {
          Comm inter = p.comm_connect(port, p.self(), 0);
          Comm merged = p.intercomm_merge(inter, false);
          body(p, merged);
          for (int r = 1; r < merged.size(); ++r) {
            p.send(merged, r, kCtlShutdown, {});
          }
          p.barrier(merged);
        });
    auto cn = runtime_.launch_world("edge_cn", {4}, {});
    cn.join();
    daemons.join();
  }

  // Fills a buffer with a position-dependent pattern and round-trips it.
  void roundtrip_pattern(Proc& p, Comm& c, std::size_t bytes,
                         const TransferOptions& opts) {
    util::Bytes host(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      host[i] = static_cast<std::byte>((i * 13 + 7) % 251);
    }
    const auto ptr = frontend::mem_alloc(p, c, 1, bytes ? bytes : 1);
    frontend::memcpy_h2d(p, c, 1, ptr, host, opts);
    auto back = frontend::memcpy_d2h(p, c, 1, ptr, bytes, opts);
    ASSERT_EQ(back.size(), bytes);
    for (std::size_t i = 0; i < bytes; i += 311) {
      ASSERT_EQ(back[i], host[i]) << "mismatch at byte " << i;
    }
    frontend::mem_free(p, c, 1, ptr);
  }

  vnet::Cluster cluster_;
  minimpi::Runtime runtime_;
  DeviceManager devices_;
};

TEST_F(TransferEdgeTest, ExactChunkMultiple) {
  with_daemons(1, [&](Proc& p, Comm& c) {
    TransferOptions opts;
    opts.chunk_bytes = 1024;
    roundtrip_pattern(p, c, 4 * 1024, opts);  // exactly 4 chunks
  });
}

TEST_F(TransferEdgeTest, OffByOneSizes) {
  with_daemons(1, [&](Proc& p, Comm& c) {
    TransferOptions opts;
    opts.chunk_bytes = 1024;
    roundtrip_pattern(p, c, 4 * 1024 - 1, opts);
    roundtrip_pattern(p, c, 4 * 1024 + 1, opts);
    roundtrip_pattern(p, c, 1, opts);
  });
}

TEST_F(TransferEdgeTest, TinyChunks) {
  with_daemons(1, [&](Proc& p, Comm& c) {
    TransferOptions opts;
    opts.chunk_bytes = 7;  // pathological: many tiny chunks
    roundtrip_pattern(p, c, 999, opts);
  });
}

TEST_F(TransferEdgeTest, ChunkLargerThanPayload) {
  with_daemons(1, [&](Proc& p, Comm& c) {
    TransferOptions opts;
    opts.chunk_bytes = 1 << 20;
    roundtrip_pattern(p, c, 100, opts);  // single chunk
  });
}

TEST_F(TransferEdgeTest, LargeStreamedD2H) {
  with_daemons(1, [&](Proc& p, Comm& c) {
    TransferOptions opts;
    opts.chunk_bytes = 64 << 10;
    roundtrip_pattern(p, c, 3u << 20, opts);  // 3 MiB, 48 chunks back
  });
}

TEST_F(TransferEdgeTest, UnpipelinedMatchesPipelined) {
  with_daemons(1, [&](Proc& p, Comm& c) {
    TransferOptions piped;
    piped.chunk_bytes = 2048;
    piped.pipelined = true;
    TransferOptions acked = piped;
    acked.pipelined = false;
    roundtrip_pattern(p, c, 10'000, piped);
    roundtrip_pattern(p, c, 10'000, acked);
  });
}

TEST_F(TransferEdgeTest, InterleavedTrafficToMultipleDaemons) {
  with_daemons(3, [&](Proc& p, Comm& c) {
    // Start pipelined uploads to all three daemons before collecting any
    // acknowledgement order-sensitive replies; per-daemon tag matching must
    // keep streams apart.
    std::vector<gpusim::DevicePtr> ptrs;
    std::vector<util::Bytes> payloads;
    for (int rank = 1; rank <= 3; ++rank) {
      const std::size_t bytes = 4096 * static_cast<std::size_t>(rank);
      util::Bytes host(bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        host[i] = static_cast<std::byte>((i + rank) % 251);
      }
      const auto ptr = frontend::mem_alloc(p, c, rank, bytes);
      TransferOptions opts;
      opts.chunk_bytes = 512;
      frontend::memcpy_h2d(p, c, rank, ptr, host, opts);
      ptrs.push_back(ptr);
      payloads.push_back(std::move(host));
    }
    for (int rank = 1; rank <= 3; ++rank) {
      const auto& expect = payloads[static_cast<std::size_t>(rank - 1)];
      auto back = frontend::memcpy_d2h(
          p, c, rank, ptrs[static_cast<std::size_t>(rank - 1)],
          expect.size());
      ASSERT_EQ(back, expect) << "daemon " << rank;
      frontend::mem_free(p, c, rank,
                         ptrs[static_cast<std::size_t>(rank - 1)]);
    }
  });
}

}  // namespace
}  // namespace dac::dacc
