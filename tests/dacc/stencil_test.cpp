// Cooperative stencil tests: daemons exchanging halo cells directly with
// each other over MPI (paper §I's "kernels that communicate directly with
// each other"), verified against a host-side reference computation.
#include <gtest/gtest.h>

#include <vector>

#include "dacc/daemon.hpp"
#include "dacc/frontend.hpp"
#include "dacc/protocol.hpp"
#include "vnet/cluster.hpp"

namespace dac::dacc {
namespace {

using minimpi::Comm;
using minimpi::Proc;

// Host reference: the same Jacobi smoothing over the full domain.
std::vector<double> reference(std::vector<double> u, std::uint32_t iters,
                              double bl, double br) {
  std::vector<double> next(u.size());
  for (std::uint32_t it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      const double l = i == 0 ? bl : u[i - 1];
      const double r = i + 1 == u.size() ? br : u[i + 1];
      next[i] = 0.5 * (l + r);
    }
    u = next;
  }
  return u;
}

class StencilTest : public ::testing::Test {
 protected:
  StencilTest()
      : cluster_([] {
          vnet::ClusterTopology t;
          t.node_count = 6;
          t.network.latency = std::chrono::microseconds(30);
          t.process_start_delay = std::chrono::microseconds(0);
          return t;
        }()),
        runtime_(cluster_) {
    register_daemon_executables(runtime_, devices_);
  }

  void run(int daemons, std::uint64_t slab, std::uint32_t iters) {
    static std::atomic<int> counter{500};
    const auto port = "st-" + std::to_string(counter.fetch_add(1));
    std::vector<vnet::NodeId> placement;
    for (int i = 0; i < daemons; ++i) placement.push_back(1 + i);
    util::ByteWriter args;
    args.put_string(port);
    args.put<std::uint64_t>(1);
    auto world = runtime_.launch_world(kStaticDaemonExe, placement,
                                       std::move(args).take());

    std::atomic<bool> ok{false};
    runtime_.register_executable(
        "stencil_cn",
        [&, port, daemons, slab, iters](Proc& p, const util::Bytes&) {
          Comm inter = p.comm_connect(port, p.self(), 0);
          Comm merged = p.intercomm_merge(inter, false);

          const auto total = slab * static_cast<std::uint64_t>(daemons);
          std::vector<double> init(total, 0.0);
          for (std::uint64_t i = total / 3; i < 2 * total / 3; ++i) {
            init[i] = 100.0;  // a hot block in the middle
          }
          const double bl = 1.0;
          const double br = -1.0;

          // Upload slabs.
          std::vector<gpusim::DevicePtr> fields;
          for (int d = 0; d < daemons; ++d) {
            const auto ptr = frontend::mem_alloc(p, merged, 1 + d,
                                                 slab * sizeof(double));
            frontend::memcpy_h2d(
                p, merged, 1 + d, ptr,
                std::as_bytes(std::span(init.data() + d * slab, slab)));
            fields.push_back(ptr);
          }

          frontend::stencil_run(p, merged, 1, fields, slab, iters, bl, br);

          // Gather and compare with the host reference.
          const auto expect = reference(init, iters, bl, br);
          bool good = true;
          for (int d = 0; d < daemons && good; ++d) {
            auto back = frontend::memcpy_d2h(
                p, merged, 1 + d, fields[static_cast<std::size_t>(d)],
                slab * sizeof(double));
            const auto* v = reinterpret_cast<const double*>(back.data());
            for (std::uint64_t i = 0; i < slab; ++i) {
              if (std::abs(v[i] - expect[d * slab + i]) > 1e-9) {
                good = false;
                break;
              }
            }
          }
          ok = good;
          for (int r = 1; r < merged.size(); ++r) {
            p.send(merged, r, kCtlShutdown, {});
          }
          p.barrier(merged);
        });
    auto cn = runtime_.launch_world("stencil_cn", {5}, {});
    cn.join();
    world.join();
    EXPECT_TRUE(ok) << daemons << " daemons, slab " << slab << ", iters "
                    << iters;
  }

  vnet::Cluster cluster_;
  minimpi::Runtime runtime_;
  DeviceManager devices_;
};

TEST_F(StencilTest, SingleDaemonMatchesReference) { run(1, 32, 5); }

TEST_F(StencilTest, TwoDaemonsExchangeHalos) { run(2, 24, 8); }

TEST_F(StencilTest, FourDaemonsLongRun) { run(4, 16, 25); }

TEST_F(StencilTest, OneCellSlabs) { run(3, 1, 4); }

TEST_F(StencilTest, ZeroIterationsIsIdentity) { run(2, 16, 0); }

}  // namespace
}  // namespace dac::dacc
